//! Structure-of-arrays trace encoding for low-bandwidth replay.
//!
//! A [`crate::inst::Inst`] is 14 bytes of payload padded to 16 in
//! `Vec<Inst>`'s array-of-structs layout, and most of those bytes are
//! zero for most instructions: ALU ops have no effective address, few
//! instructions use all three source slots, and nearly every PC is a
//! small offset from [`crate::trace::CODE_BASE`]. [`PackedTrace`]
//! splits the record into per-field streams and stores the optional
//! fields sparsely:
//!
//! * `meta` — one `u16` per instruction: op class (4 bits), the full
//!   flags byte (8 bits), plus has-ea / has-dst / source-count
//!   presence bits that say which sparse streams carry an entry;
//! * `site` — one `u16` per instruction holding the code-segment site
//!   (`(pc − CODE_BASE) / 4`), with a sentinel escaping to a full
//!   `u32` in `wide_pc` for the rare PC outside the segment;
//! * `ea` — a `u32` per instruction that has a non-zero effective
//!   address (memory ops and branches);
//! * `regs` — the destination id (if any) followed by the used source
//!   ids, one byte each.
//!
//! The encoding is lossless (see [`PackedTrace::to_trace`]) and decodes
//! strictly sequentially through cheap cursor arithmetic — no hashing,
//! no branching beyond the presence bits — which is exactly the access
//! pattern of trace-driven simulation. Typical traces shrink ~2–2.5×,
//! which matters when many simulator configurations replay the same
//! trace concurrently and share memory bandwidth.
//!
//! ## Hardened decoding
//!
//! The sequential decoder trusts its streams for speed, so a corrupted
//! buffer (bit rot, a buggy producer, deliberate fault injection) could
//! otherwise panic deep inside a replay. Every trace therefore carries
//! a checksum computed at pack time, and [`PackedTrace::check`] verifies
//! both the structural invariants (op classes decodable, register ids in
//! range, side streams consumed exactly) and the checksum, returning a
//! typed [`TraceError`] instead of panicking. Consumers that may face
//! untrusted bytes run `check()` first — see
//! `sapa_cpu::Simulator::try_run_packed` — after which the trusting
//! decoder is guaranteed panic-free. [`PackedTrace::with_corrupted_byte`]
//! is the matching fault-injection hook: it flips stream bytes while
//! keeping the stored checksum, exactly what a corruption looks like.

use crate::inst::{Inst, OpClass};
use crate::reg::{self, Reg};
use crate::stats::TraceStats;
use crate::trace::{Trace, CODE_BASE};

/// `site` value escaping to the `wide_pc` stream.
const WIDE_PC: u16 = u16::MAX;

/// Default block size for [`BlockDecoder`] consumers: 256 decoded
/// `Inst`s are 4 KB — one L1-resident slab that amortizes per-block
/// bookkeeping over enough instructions to make the per-instruction
/// decode essentially straight-line.
pub const BLOCK_LEN: usize = 256;

/// Bit layout of one `meta` entry.
const OP_BITS: u16 = 0xF;
const FLAGS_SHIFT: u16 = 4;
const HAS_EA: u16 = 1 << 12;
const HAS_DST: u16 = 1 << 13;
const NSRCS_SHIFT: u16 = 14;

/// A compact, immutable, structure-of-arrays instruction trace.
///
/// ```
/// use sapa_isa::packed::PackedTrace;
/// use sapa_isa::reg;
/// use sapa_isa::trace::Tracer;
///
/// let mut t = Tracer::new();
/// t.iload(0, reg::gpr(1), 0x1000_0000, 4, &[reg::gpr(2)]);
/// t.ialu(1, reg::gpr(3), &[reg::gpr(1)]);
/// let trace = t.finish();
/// let packed = PackedTrace::from_trace(&trace);
/// assert_eq!(packed.len(), 2);
/// assert_eq!(packed.to_trace(), trace);
/// assert!(packed.heap_bytes() < trace.len() * std::mem::size_of::<sapa_isa::Inst>());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedTrace {
    meta: Vec<u16>,
    site: Vec<u16>,
    wide_pc: Vec<u32>,
    ea: Vec<u32>,
    regs: Vec<u8>,
    /// FNV-1a over all streams, fixed at pack time; [`PackedTrace::check`]
    /// recomputes and compares.
    checksum: u64,
}

impl Default for PackedTrace {
    fn default() -> Self {
        PackedTrace::from_insts(&[])
    }
}

impl PackedTrace {
    /// Packs a slice of instructions.
    pub fn from_insts(insts: &[Inst]) -> Self {
        let mut p = PackedTrace {
            meta: Vec::with_capacity(insts.len()),
            site: Vec::with_capacity(insts.len()),
            wide_pc: Vec::new(),
            ea: Vec::new(),
            regs: Vec::new(),
            checksum: 0,
        };
        for inst in insts {
            // Trailing NONE sources are dropped; interior NONEs (legal
            // in hand-built records) are kept as explicit 255 bytes.
            let nsrcs = inst
                .srcs
                .iter()
                .rposition(|r| r.is_some())
                .map_or(0, |k| k + 1);
            let mut meta = (inst.op.index() as u16 & OP_BITS)
                | ((inst.flags as u16) << FLAGS_SHIFT)
                | ((nsrcs as u16) << NSRCS_SHIFT);
            if inst.ea != 0 {
                meta |= HAS_EA;
                p.ea.push(inst.ea);
            }
            if inst.dst.is_some() {
                meta |= HAS_DST;
                p.regs.push(inst.dst.id());
            }
            for src in &inst.srcs[..nsrcs] {
                p.regs.push(src.id());
            }
            p.meta.push(meta);
            let offset = inst.pc.wrapping_sub(CODE_BASE);
            if inst.pc >= CODE_BASE && offset % 4 == 0 && offset / 4 < WIDE_PC as u32 {
                p.site.push((offset / 4) as u16);
            } else {
                p.site.push(WIDE_PC);
                p.wide_pc.push(inst.pc);
            }
        }
        p.checksum = p.compute_checksum();
        p
    }

    /// Packs a [`Trace`].
    pub fn from_trace(trace: &Trace) -> Self {
        Self::from_insts(trace.insts())
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Sequentially decoding iterator over the instructions.
    pub fn iter(&self) -> PackedReader<'_> {
        PackedReader::new(self)
    }

    /// Block decoder positioned at instruction 0 — the fast replay
    /// path. See [`BlockDecoder`].
    pub fn block_decoder(&self) -> BlockDecoder<'_> {
        BlockDecoder::new(self)
    }

    /// Unpacks into the array-of-structs [`Trace`] form.
    pub fn to_trace(&self) -> Trace {
        Trace::from_insts(self.iter().collect())
    }

    /// Instruction-class breakdown, computed from the op stream without
    /// decoding full records.
    pub fn stats(&self) -> TraceStats {
        let mut counts = [0u64; OpClass::COUNT];
        for &m in &self.meta {
            counts[(m & OP_BITS) as usize] += 1;
        }
        TraceStats::from_counts(counts)
    }

    /// Bytes of stream storage (the payload an iteration touches).
    pub fn heap_bytes(&self) -> usize {
        self.meta.len() * 2
            + self.site.len() * 2
            + self.wide_pc.len() * 4
            + self.ea.len() * 4
            + self.regs.len()
    }

    /// The stream checksum stored at pack time.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// FNV-1a over every stream, with each stream's length mixed in
    /// first so bytes cannot silently migrate across stream boundaries.
    /// xor-then-multiply-by-an-odd-prime is a bijection on `u64`, so any
    /// single corrupted byte is guaranteed to change the digest.
    fn compute_checksum(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn eat(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h = (*h ^ u64::from(b)).wrapping_mul(PRIME);
            }
        }
        let mut h = OFFSET;
        eat(&mut h, &(self.meta.len() as u64).to_le_bytes());
        for &m in &self.meta {
            eat(&mut h, &m.to_le_bytes());
        }
        eat(&mut h, &(self.site.len() as u64).to_le_bytes());
        for &s in &self.site {
            eat(&mut h, &s.to_le_bytes());
        }
        eat(&mut h, &(self.wide_pc.len() as u64).to_le_bytes());
        for &w in &self.wide_pc {
            eat(&mut h, &w.to_le_bytes());
        }
        eat(&mut h, &(self.ea.len() as u64).to_le_bytes());
        for &e in &self.ea {
            eat(&mut h, &e.to_le_bytes());
        }
        eat(&mut h, &(self.regs.len() as u64).to_le_bytes());
        eat(&mut h, &self.regs);
        h
    }

    /// Validates the trace against decode-safety invariants and the
    /// stored checksum, returning the first problem found.
    ///
    /// A trace that passes is guaranteed to decode through
    /// [`PackedTrace::iter`] / [`PackedReader`] without panicking: every
    /// op nibble maps to an [`OpClass`], every register byte is a legal
    /// id, and the sparse side streams are consumed exactly. Structural
    /// problems are reported in preference to the (catch-all) checksum
    /// mismatch so the error pinpoints the corrupted record when it can.
    pub fn check(&self) -> Result<(), TraceError> {
        if self.site.len() != self.meta.len() {
            return Err(TraceError::StreamMismatch {
                stream: "site",
                have: self.site.len(),
                want: self.meta.len(),
            });
        }
        let (mut wide, mut ea, mut regs) = (0usize, 0usize, 0usize);
        for (index, &m) in self.meta.iter().enumerate() {
            let op = (m & OP_BITS) as usize;
            if OpClass::from_index(op).is_none() {
                return Err(TraceError::BadOpClass {
                    index,
                    op: op as u8,
                });
            }
            if self.site[index] == WIDE_PC {
                if wide == self.wide_pc.len() {
                    return Err(TraceError::StreamOverrun {
                        index,
                        stream: "wide_pc",
                    });
                }
                wide += 1;
            }
            if m & HAS_EA != 0 {
                if ea == self.ea.len() {
                    return Err(TraceError::StreamOverrun {
                        index,
                        stream: "ea",
                    });
                }
                ea += 1;
            }
            let need = usize::from(m & HAS_DST != 0) + (m >> NSRCS_SHIFT) as usize;
            for _ in 0..need {
                match self.regs.get(regs) {
                    None => {
                        return Err(TraceError::StreamOverrun {
                            index,
                            stream: "regs",
                        })
                    }
                    Some(&id) if id != Reg::NONE.id() && usize::from(id) >= Reg::COUNT => {
                        return Err(TraceError::BadRegister { index, id });
                    }
                    Some(_) => regs += 1,
                }
            }
        }
        if wide != self.wide_pc.len() {
            return Err(TraceError::StreamMismatch {
                stream: "wide_pc",
                have: self.wide_pc.len(),
                want: wide,
            });
        }
        if ea != self.ea.len() {
            return Err(TraceError::StreamMismatch {
                stream: "ea",
                have: self.ea.len(),
                want: ea,
            });
        }
        if regs != self.regs.len() {
            return Err(TraceError::StreamMismatch {
                stream: "regs",
                have: self.regs.len(),
                want: regs,
            });
        }
        let computed = self.compute_checksum();
        if computed != self.checksum {
            return Err(TraceError::ChecksumMismatch {
                stored: self.checksum,
                computed,
            });
        }
        Ok(())
    }

    /// A copy with one stream byte xored by `xor` — the fault-injection
    /// primitive behind the chaos suite and the corruption fuzz loop.
    ///
    /// `offset` indexes the concatenation of the streams in declaration
    /// order (`meta`, `site`, `wide_pc`, `ea`, `regs`, little-endian
    /// within each element) and wraps modulo [`PackedTrace::heap_bytes`].
    /// The stored checksum is deliberately left at its pack-time value,
    /// exactly as real bit rot would, so [`PackedTrace::check`] on the
    /// result fails whenever `xor != 0`.
    pub fn with_corrupted_byte(&self, offset: usize, xor: u8) -> PackedTrace {
        let mut t = self.clone();
        let total = t.heap_bytes();
        if total == 0 {
            return t;
        }
        let mut o = offset % total;
        fn flip16(v: &mut [u16], o: usize, xor: u8) {
            let mut b = v[o / 2].to_le_bytes();
            b[o % 2] ^= xor;
            v[o / 2] = u16::from_le_bytes(b);
        }
        fn flip32(v: &mut [u32], o: usize, xor: u8) {
            let mut b = v[o / 4].to_le_bytes();
            b[o % 4] ^= xor;
            v[o / 4] = u32::from_le_bytes(b);
        }
        if o < t.meta.len() * 2 {
            flip16(&mut t.meta, o, xor);
            return t;
        }
        o -= t.meta.len() * 2;
        if o < t.site.len() * 2 {
            flip16(&mut t.site, o, xor);
            return t;
        }
        o -= t.site.len() * 2;
        if o < t.wide_pc.len() * 4 {
            flip32(&mut t.wide_pc, o, xor);
            return t;
        }
        o -= t.wide_pc.len() * 4;
        if o < t.ea.len() * 4 {
            flip32(&mut t.ea, o, xor);
            return t;
        }
        o -= t.ea.len() * 4;
        t.regs[o] ^= xor;
        t
    }
}

/// Why a [`PackedTrace`] failed [`PackedTrace::check`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// The recomputed stream digest disagrees with the stored one.
    ChecksumMismatch {
        /// Digest recorded at pack time.
        stored: u64,
        /// Digest of the streams as they are now.
        computed: u64,
    },
    /// An op nibble does not map to any [`OpClass`].
    BadOpClass {
        /// Instruction index.
        index: usize,
        /// The undecodable op value (12..=15).
        op: u8,
    },
    /// A register byte is outside the architected id space.
    BadRegister {
        /// Instruction index.
        index: usize,
        /// The out-of-range register id.
        id: u8,
    },
    /// A record's presence bits ask for more side-stream entries than
    /// the stream holds.
    StreamOverrun {
        /// Instruction index at which the stream ran dry.
        index: usize,
        /// Which stream (`"wide_pc"`, `"ea"`, `"regs"`).
        stream: &'static str,
    },
    /// A stream's length disagrees with what the meta stream implies.
    StreamMismatch {
        /// Which stream.
        stream: &'static str,
        /// Actual element count.
        have: usize,
        /// Count implied by the meta stream.
        want: usize,
    },
    /// The decoded instructions violate architectural invariants
    /// (`sapa_isa::validate`).
    Invariant {
        /// The first violation, rendered.
        first: String,
        /// Total violations found (up to the validator's cap).
        violations: usize,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::ChecksumMismatch { stored, computed } => write!(
                f,
                "trace checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            TraceError::BadOpClass { index, op } => {
                write!(f, "inst {index}: op nibble {op} has no OpClass")
            }
            TraceError::BadRegister { index, id } => {
                write!(f, "inst {index}: register id {id} out of range")
            }
            TraceError::StreamOverrun { index, stream } => {
                write!(f, "inst {index}: {stream} stream exhausted")
            }
            TraceError::StreamMismatch { stream, have, want } => {
                write!(
                    f,
                    "{stream} stream holds {have} entries, meta implies {want}"
                )
            }
            TraceError::Invariant { first, violations } => {
                write!(f, "{violations} invariant violation(s), first: {first}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl<'a> IntoIterator for &'a PackedTrace {
    type Item = Inst;
    type IntoIter = PackedReader<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

fn reg_from_id(id: u8) -> Reg {
    match id {
        0..=31 => reg::gpr(id),
        32..=63 => reg::fpr(id - 32),
        64..=127 => reg::vr(id - 64),
        // Ids 128..=254 never occur in a checked trace (`check()`
        // reports them as `BadRegister`); decode them as NONE rather
        // than asserting mid-iteration when a caller skipped `check`.
        _ => Reg::NONE,
    }
}

/// Branch-free op-class dispatch: every nibble maps to a class, with
/// the undecodable values 12..=15 folded to `Other` exactly as
/// [`OpClass::from_index`]`.unwrap_or(Other)` would.
const OP_LUT: [OpClass; 16] = {
    let mut t = [OpClass::Other; 16];
    let mut i = 0;
    while i < OpClass::COUNT {
        t[i] = OpClass::ALL[i];
        i += 1;
    }
    t
};

/// Branch-free register decode: the whole `u8` id space, with the
/// unarchitected hole 128..=254 folded to NONE like [`reg_from_id`].
const REG_LUT: [Reg; 256] = {
    let mut t = [Reg::NONE; 256];
    let mut i = 0usize;
    while i < 128 {
        let id = i as u8;
        t[i] = match id {
            0..=31 => reg::gpr(id),
            32..=63 => reg::fpr(id - 32),
            _ => reg::vr(id - 64),
        };
        i += 1;
    }
    t
};

/// Sequential decoder over a [`PackedTrace`].
///
/// The sparse side-streams make random access impossible without an
/// index; replay does not need one. [`PackedReader::get`] additionally
/// allows re-reading the most recent index, which is the exact access
/// pattern of an instruction-fetch stage that can stall on an I-cache
/// miss and retry the same slot next cycle.
#[derive(Debug, Clone)]
pub struct PackedReader<'a> {
    trace: &'a PackedTrace,
    /// Index the next `decode` call produces.
    next: usize,
    wide_pos: usize,
    ea_pos: usize,
    regs_pos: usize,
    /// Cache of the instruction at `next - 1` (valid once `next > 0`).
    cur: Inst,
}

impl<'a> PackedReader<'a> {
    /// A reader positioned at instruction 0.
    pub fn new(trace: &'a PackedTrace) -> Self {
        PackedReader {
            trace,
            next: 0,
            wide_pos: 0,
            ea_pos: 0,
            regs_pos: 0,
            cur: Inst {
                pc: 0,
                ea: 0,
                op: OpClass::Other,
                dst: Reg::NONE,
                srcs: [Reg::NONE; 3],
                flags: 0,
            },
        }
    }

    fn decode(&mut self) -> Inst {
        let t = self.trace;
        let meta = t.meta[self.next];
        // Nibbles 12..15 never occur in a checked trace (`check()`
        // reports them as `BadOpClass`); decode them as Other rather
        // than panicking mid-iteration when a caller skipped `check`.
        let op = OpClass::from_index((meta & OP_BITS) as usize).unwrap_or(OpClass::Other);
        let flags = (meta >> FLAGS_SHIFT) as u8;
        let pc = match t.site[self.next] {
            WIDE_PC => {
                let pc = t.wide_pc[self.wide_pos];
                self.wide_pos += 1;
                pc
            }
            site => CODE_BASE + 4 * site as u32,
        };
        let ea = if meta & HAS_EA != 0 {
            let ea = t.ea[self.ea_pos];
            self.ea_pos += 1;
            ea
        } else {
            0
        };
        let dst = if meta & HAS_DST != 0 {
            let d = reg_from_id(t.regs[self.regs_pos]);
            self.regs_pos += 1;
            d
        } else {
            Reg::NONE
        };
        let nsrcs = (meta >> NSRCS_SHIFT) as usize;
        let mut srcs = [Reg::NONE; 3];
        for slot in &mut srcs[..nsrcs] {
            *slot = reg_from_id(t.regs[self.regs_pos]);
            self.regs_pos += 1;
        }
        self.next += 1;
        Inst {
            pc,
            ea,
            op,
            dst,
            srcs,
            flags,
        }
    }

    /// The instruction at `idx`, which must be the index of the last
    /// decoded instruction (a re-read) or the one after it.
    ///
    /// # Panics
    ///
    /// Panics if `idx` violates the sequential-access contract or is out
    /// of bounds.
    #[inline]
    pub fn get(&mut self, idx: usize) -> Inst {
        if idx + 1 == self.next {
            return self.cur;
        }
        assert_eq!(
            idx, self.next,
            "PackedReader is sequential: asked for {idx}, cursor at {}",
            self.next
        );
        self.cur = self.decode();
        self.cur
    }
}

/// Batch decoder over a [`PackedTrace`] — the fast path for replay.
///
/// [`PackedReader`] pulls one instruction at a time, paying cursor
/// updates through `&mut self` fields, a fallback-laden op/register
/// decode, and a call boundary per instruction. `BlockDecoder::fill`
/// instead decodes a caller-sized chunk in one tight loop: the four
/// stream cursors live in registers for the whole block, op classes and
/// register ids go through branch-free lookup tables (`OP_LUT`,
/// `REG_LUT`), and the structural guard (do the sparse side streams
/// cover this block?) runs once per block instead of once per pull.
/// Decoding into a small reusable buffer keeps the decoded `Inst`s
/// L1-resident while the compact streams — roughly half the bytes of
/// the `Vec<Inst>` form — stream through the cache exactly once.
///
/// Decoding is strictly sequential; interleaving two decoders over the
/// same trace is fine (each carries its own cursors).
///
/// ```
/// use sapa_isa::packed::{PackedTrace, BLOCK_LEN};
/// use sapa_isa::reg;
/// use sapa_isa::trace::Tracer;
///
/// let mut t = Tracer::new();
/// for i in 0..600 {
///     t.ialu(i % 32, reg::gpr(1), &[reg::gpr(2)]);
/// }
/// let packed = PackedTrace::from_trace(&t.finish());
/// let mut decoder = packed.block_decoder();
/// let mut buf = vec![Default::default(); BLOCK_LEN];
/// let mut total = 0;
/// loop {
///     let n = decoder.fill(&mut buf);
///     if n == 0 {
///         break;
///     }
///     total += n;
/// }
/// assert_eq!(total, packed.len());
/// ```
#[derive(Debug, Clone)]
pub struct BlockDecoder<'a> {
    trace: &'a PackedTrace,
    /// Index of the next instruction `fill` will produce.
    next: usize,
    wide_pos: usize,
    ea_pos: usize,
    regs_pos: usize,
}

impl<'a> BlockDecoder<'a> {
    /// A decoder positioned at instruction 0.
    pub fn new(trace: &'a PackedTrace) -> Self {
        BlockDecoder {
            trace,
            next: 0,
            wide_pos: 0,
            ea_pos: 0,
            regs_pos: 0,
        }
    }

    /// Index of the next instruction `fill` will produce.
    pub fn position(&self) -> usize {
        self.next
    }

    /// Instructions not yet decoded.
    pub fn remaining(&self) -> usize {
        self.trace.len() - self.next
    }

    /// Decodes up to `buf.len()` instructions into the front of `buf`
    /// and returns how many were written (0 once the trace is
    /// exhausted).
    ///
    /// # Panics
    ///
    /// Panics if a corrupted trace's presence bits ask for more
    /// side-stream entries than exist — the same streams-exhausted
    /// condition [`PackedTrace::check`] reports as a typed error.
    /// Callers facing untrusted bytes must `check()` first, after which
    /// `fill` is guaranteed panic-free (same contract as
    /// [`PackedReader`]).
    pub fn fill(&mut self, buf: &mut [Inst]) -> usize {
        let t = self.trace;
        let n = (t.meta.len() - self.next).min(buf.len());
        if n == 0 {
            return 0;
        }
        let metas = &t.meta[self.next..self.next + n];
        let sites = &t.site[self.next..self.next + n];
        let (wide, eas, regs) = (&t.wide_pc[..], &t.ea[..], &t.regs[..]);
        let (mut wp, mut ep, mut rp) = (self.wide_pos, self.ea_pos, self.regs_pos);
        for (i, out) in buf[..n].iter_mut().enumerate() {
            let m = metas[i];
            let site = sites[i];
            // Wide PCs are rare escapes, so this branch predicts ~always.
            let pc = if site == WIDE_PC {
                let pc = wide.get(wp).copied().unwrap_or(0);
                wp += 1;
                pc
            } else {
                CODE_BASE + 4 * site as u32
            };
            // The sparse side streams are read branch-free: load the
            // next entry unconditionally (the `get` clamp only fails at
            // the very end of a stream, so it predicts essentially
            // perfectly), select with a mask derived from the presence
            // bit, and advance the cursor by that bit. The presence
            // bits themselves are data-dependent and unpredictable —
            // branching on them is what made the per-instruction reader
            // slow. Register absence costs nothing: id 255 indexes
            // [`REG_LUT`] straight to NONE, so `id | (present - 1)`
            // folds the select into the lookup.
            let has_ea = (m & HAS_EA != 0) as u32;
            let ea = eas.get(ep).copied().unwrap_or(0) & has_ea.wrapping_neg();
            ep += has_ea as usize;

            let has_dst = (m & HAS_DST != 0) as u8;
            let dst_id = regs.get(rp).copied().unwrap_or(0) | has_dst.wrapping_sub(1);
            rp += has_dst as usize;

            let nsrcs = (m >> NSRCS_SHIFT) as u8;
            let s0 = regs.get(rp).copied().unwrap_or(0) | ((nsrcs > 0) as u8).wrapping_sub(1);
            let s1 = regs.get(rp + 1).copied().unwrap_or(0) | ((nsrcs > 1) as u8).wrapping_sub(1);
            let s2 = regs.get(rp + 2).copied().unwrap_or(0) | ((nsrcs > 2) as u8).wrapping_sub(1);
            rp += nsrcs as usize;

            *out = Inst {
                pc,
                ea,
                op: OP_LUT[(m & OP_BITS) as usize],
                dst: REG_LUT[dst_id as usize],
                srcs: [
                    REG_LUT[s0 as usize],
                    REG_LUT[s1 as usize],
                    REG_LUT[s2 as usize],
                ],
                flags: (m >> FLAGS_SHIFT) as u8,
            };
        }

        // Structural validation, hoisted to block granularity: a
        // corrupted trace whose presence bits demand more side-stream
        // entries than exist drives a cursor past its stream. The
        // clamped loads above keep every access in-bounds regardless,
        // so the overrun is caught here — before any decoded
        // instruction escapes this call — instead of panicking deep in
        // the loop. A trace that passed [`PackedTrace::check`] can
        // never trip this.
        assert!(
            wp <= wide.len() && ep <= eas.len() && rp <= regs.len(),
            "packed trace side streams exhausted in block {}..{}: corrupted \
             trace (PackedTrace::check would have caught this)",
            self.next,
            self.next + n
        );
        self.next += n;
        self.wide_pos = wp;
        self.ea_pos = ep;
        self.regs_pos = rp;
        n
    }
}

impl Iterator for PackedReader<'_> {
    type Item = Inst;

    fn next(&mut self) -> Option<Inst> {
        if self.next >= self.trace.len() {
            return None;
        }
        self.cur = self.decode();
        Some(self.cur)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.trace.len() - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for PackedReader<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::flags;
    use crate::trace::Tracer;

    fn sample_trace() -> Trace {
        let mut t = Tracer::new();
        t.iload(0, reg::gpr(1), 0x1000_0040, 4, &[reg::gpr(2)]);
        t.ialu(1, reg::gpr(3), &[reg::gpr(1), reg::gpr(3)]);
        t.branch(2, false, 0, &[reg::gpr(3)]);
        t.vload(3, reg::vr(0), 0x1000_0100, 16, &[reg::gpr(2)]);
        t.vsimple(4, reg::vr(1), &[reg::vr(0), reg::vr(1)]);
        t.vperm(5, reg::vr(2), &[reg::vr(1)]);
        t.istore(6, 0x1000_0200, 4, &[reg::gpr(3), reg::gpr(2)]);
        t.fpu(7, reg::fpr(5), &[reg::fpr(1), reg::fpr(2), reg::fpr(3)]);
        t.jump(8, 0);
        t.finish()
    }

    #[test]
    fn round_trips_a_mixed_trace() {
        let tr = sample_trace();
        let packed = PackedTrace::from_trace(&tr);
        assert_eq!(packed.len(), tr.len());
        assert_eq!(packed.to_trace(), tr);
    }

    #[test]
    fn empty_trace_round_trips() {
        let tr = Tracer::new().finish();
        let packed = PackedTrace::from_trace(&tr);
        assert!(packed.is_empty());
        assert_eq!(packed.to_trace(), tr);
    }

    #[test]
    fn stats_match_unpacked() {
        let tr = sample_trace();
        assert_eq!(PackedTrace::from_trace(&tr).stats(), tr.stats());
    }

    #[test]
    fn is_smaller_than_aos_layout() {
        // A realistic mix: the SoA streams must beat Vec<Inst>'s padded
        // records by at least 2x.
        let mut t = Tracer::new();
        for i in 0..10_000u32 {
            // Sites loop over a small static footprint, like real code.
            let s = 8 * (i % 1024);
            t.iload(s, reg::gpr(1), 0x1000_0000 + i, 4, &[reg::gpr(2)]);
            t.ialu(s + 1, reg::gpr(3), &[reg::gpr(1), reg::gpr(3)]);
            t.ialu(s + 2, reg::gpr(4), &[reg::gpr(3)]);
            t.vsimple(s + 3, reg::vr(1), &[reg::vr(0), reg::vr(1)]);
            t.branch(s + 4, i % 3 == 0, s, &[reg::gpr(4)]);
        }
        let tr = t.finish();
        let packed = PackedTrace::from_trace(&tr);
        let aos = tr.len() * std::mem::size_of::<Inst>();
        assert!(
            packed.heap_bytes() * 2 <= aos,
            "packed {} vs AoS {aos}",
            packed.heap_bytes()
        );
        assert_eq!(packed.to_trace(), tr);
    }

    #[test]
    fn interior_none_sources_survive() {
        // Tracer pads at the end, but hand-built records may have a
        // NONE between real sources; the count encoding must keep it.
        let inst = Inst {
            pc: CODE_BASE + 8,
            ea: 0,
            op: OpClass::IAlu,
            dst: reg::gpr(1),
            srcs: [reg::gpr(2), Reg::NONE, reg::gpr(3)],
            flags: 0,
        };
        let packed = PackedTrace::from_insts(&[inst]);
        assert_eq!(packed.to_trace().insts(), &[inst]);
    }

    #[test]
    fn out_of_segment_and_unaligned_pcs_take_the_wide_path() {
        let far_site = Inst {
            pc: CODE_BASE + 4 * (WIDE_PC as u32 + 7), // site too big for u16
            ea: 0,
            op: OpClass::Other,
            dst: Reg::NONE,
            srcs: [Reg::NONE; 3],
            flags: 0,
        };
        let below = Inst {
            pc: CODE_BASE - 4,
            ..far_site
        };
        let unaligned = Inst {
            pc: CODE_BASE + 2,
            ..far_site
        };
        let boundary = Inst {
            pc: CODE_BASE + 4 * (WIDE_PC as u32), // site == sentinel value
            ..far_site
        };
        let insts = [far_site, below, unaligned, boundary];
        let packed = PackedTrace::from_insts(&insts);
        assert_eq!(packed.to_trace().insts(), &insts);
    }

    #[test]
    fn arbitrary_flags_bytes_are_preserved() {
        // Trace::read_from accepts any flags byte; packing must too.
        let mut insts = Vec::new();
        for raw in [0u8, 1, 3, 0x55, 0xAA, 0xFF, 4 << flags::WIDTH_SHIFT] {
            insts.push(Inst {
                pc: CODE_BASE,
                ea: 0x2000_0000,
                op: OpClass::ILoad,
                dst: reg::gpr(7),
                srcs: [reg::gpr(1), Reg::NONE, Reg::NONE],
                flags: raw,
            });
        }
        let packed = PackedTrace::from_insts(&insts);
        assert_eq!(packed.to_trace().insts(), &insts[..]);
    }

    #[test]
    fn reader_allows_re_reading_the_current_slot() {
        let tr = sample_trace();
        let packed = PackedTrace::from_trace(&tr);
        let mut r = packed.iter();
        assert_eq!(r.get(0), tr.insts()[0]);
        assert_eq!(r.get(0), tr.insts()[0]); // stalled fetch retries
        assert_eq!(r.get(1), tr.insts()[1]);
        assert_eq!(r.get(1), tr.insts()[1]);
        assert_eq!(r.get(2), tr.insts()[2]);
    }

    #[test]
    #[should_panic(expected = "sequential")]
    fn reader_rejects_random_access() {
        let packed = PackedTrace::from_trace(&sample_trace());
        let mut r = packed.iter();
        let _ = r.get(3);
    }

    #[test]
    fn check_accepts_freshly_packed_traces() {
        assert_eq!(PackedTrace::from_trace(&sample_trace()).check(), Ok(()));
        assert_eq!(PackedTrace::default().check(), Ok(()));
    }

    #[test]
    fn every_single_byte_corruption_is_detected() {
        let packed = PackedTrace::from_trace(&sample_trace());
        for offset in 0..packed.heap_bytes() {
            let bad = packed.with_corrupted_byte(offset, 0x80);
            assert!(bad.check().is_err(), "corruption at byte {offset} missed");
        }
    }

    #[test]
    fn zero_xor_corruption_is_a_no_op() {
        let packed = PackedTrace::from_trace(&sample_trace());
        assert_eq!(packed.with_corrupted_byte(5, 0), packed);
        assert_eq!(
            PackedTrace::default().with_corrupted_byte(9, 0xFF).check(),
            Ok(())
        );
    }

    #[test]
    fn bad_op_nibble_is_pinpointed() {
        let packed = PackedTrace::from_trace(&sample_trace());
        // Force instruction 3's op nibble to 15 (OpClass::COUNT is 12, so
        // 15 is undecodable) by xoring the low byte of meta[3].
        let xor = (packed.meta[3] & OP_BITS) as u8 ^ 0x0F;
        let bad = packed.with_corrupted_byte(3 * 2, xor);
        assert_eq!(
            bad.check(),
            Err(TraceError::BadOpClass { index: 3, op: 15 })
        );
    }

    #[test]
    fn bad_register_id_is_pinpointed() {
        let packed = PackedTrace::from_trace(&sample_trace());
        // First regs byte is instruction 0's destination (gpr 1); id 200
        // falls in the unarchitected 128..=254 hole.
        let reg_off = packed.meta.len() * 2
            + packed.site.len() * 2
            + packed.wide_pc.len() * 4
            + packed.ea.len() * 4;
        let bad = packed.with_corrupted_byte(reg_off, 1 ^ 200);
        assert_eq!(
            bad.check(),
            Err(TraceError::BadRegister { index: 0, id: 200 })
        );
    }

    #[test]
    fn checksum_is_stable_across_clone_and_reorderings() {
        let a = PackedTrace::from_trace(&sample_trace());
        assert_eq!(a.clone().checksum(), a.checksum());
        // Same instructions repacked must produce the same digest.
        assert_eq!(
            PackedTrace::from_trace(&sample_trace()).checksum(),
            a.checksum()
        );
    }

    #[test]
    fn trace_error_displays_mention_the_stream() {
        let e = TraceError::StreamOverrun {
            index: 4,
            stream: "ea",
        };
        assert!(e.to_string().contains("ea stream"));
        let e = TraceError::ChecksumMismatch {
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("checksum mismatch"));
    }

    #[test]
    fn iterator_yields_every_instruction_in_order() {
        let tr = sample_trace();
        let packed = PackedTrace::from_trace(&tr);
        let unpacked: Vec<Inst> = packed.iter().collect();
        assert_eq!(unpacked, tr.insts());
        assert_eq!(packed.iter().len(), tr.len());
    }

    /// Drains a decoder with a fixed per-call buffer size.
    fn drain_blocks(packed: &PackedTrace, block: usize) -> Vec<Inst> {
        let mut d = packed.block_decoder();
        let mut buf = vec![Inst::default(); block];
        let mut out = Vec::new();
        loop {
            let n = d.fill(&mut buf);
            if n == 0 {
                break;
            }
            out.extend_from_slice(&buf[..n]);
        }
        assert_eq!(d.position(), packed.len());
        assert_eq!(d.remaining(), 0);
        out
    }

    #[test]
    fn block_decode_matches_per_inst_reader_at_every_block_size() {
        let tr = sample_trace();
        let packed = PackedTrace::from_trace(&tr);
        for block in [1, 2, 3, tr.len() - 1, tr.len(), tr.len() + 1, BLOCK_LEN] {
            assert_eq!(
                drain_blocks(&packed, block),
                tr.insts(),
                "block size {block} diverged"
            );
        }
    }

    #[test]
    fn block_decode_handles_wide_pcs_and_sparse_streams() {
        // Mix wide-PC escapes with dense/sparse ea and reg usage so
        // every side-stream cursor advances at a different rate.
        let mut insts = Vec::new();
        for i in 0..700u32 {
            insts.push(Inst {
                pc: if i % 5 == 0 {
                    CODE_BASE + 2 + i // unaligned: wide path
                } else {
                    CODE_BASE + 4 * (i % 100)
                },
                ea: if i % 3 == 0 { 0x2000_0000 + i } else { 0 },
                op: OpClass::ALL[(i as usize) % OpClass::COUNT],
                dst: if i % 2 == 0 {
                    reg::gpr(i as u8 % 32)
                } else {
                    Reg::NONE
                },
                srcs: match i % 4 {
                    0 => [Reg::NONE; 3],
                    1 => [reg::fpr(1), Reg::NONE, Reg::NONE],
                    2 => [reg::vr(2), reg::vr(3), Reg::NONE],
                    _ => [reg::gpr(4), reg::gpr(5), reg::gpr(6)],
                },
                flags: (i % 251) as u8,
            });
        }
        // from_insts normalises trailing-NONE handling the same way
        // to_trace will return it, so compare against the round trip.
        let packed = PackedTrace::from_insts(&insts);
        let expect = packed.to_trace();
        for block in [1, 7, 255, 256, 257, 699, 700, 701] {
            assert_eq!(
                drain_blocks(&packed, block),
                expect.insts(),
                "block size {block} diverged"
            );
        }
    }

    #[test]
    fn block_decoder_on_empty_trace_returns_zero() {
        let packed = PackedTrace::default();
        let mut d = packed.block_decoder();
        let mut buf = [Inst::default(); 4];
        assert_eq!(d.fill(&mut buf), 0);
        assert_eq!(d.fill(&mut buf), 0);
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn block_decoder_with_empty_buffer_makes_no_progress() {
        let packed = PackedTrace::from_trace(&sample_trace());
        let mut d = packed.block_decoder();
        assert_eq!(d.fill(&mut []), 0);
        assert_eq!(d.position(), 0);
    }

    #[test]
    #[should_panic(expected = "side streams exhausted")]
    fn block_decoder_panics_on_stream_overrun() {
        let packed = PackedTrace::from_trace(&sample_trace());
        // Inflate the last instruction's source count: xor the high
        // meta byte so nsrcs claims entries the regs stream lacks.
        let last = packed.meta.len() - 1;
        let bad = packed.with_corrupted_byte(last * 2 + 1, 0xC0);
        assert!(bad.check().is_err(), "corruption should be detectable");
        let mut buf = [Inst::default(); BLOCK_LEN];
        let mut d = bad.block_decoder();
        while d.fill(&mut buf) != 0 {}
    }
}
