//! Instruction-mix statistics (paper Figure 1 and Table III).

use crate::inst::{Inst, OpClass};

/// Instruction-class breakdown of a trace.
///
/// ```
/// use sapa_isa::{OpClass, TraceStats};
/// use sapa_isa::trace::Tracer;
/// use sapa_isa::reg;
///
/// let mut t = Tracer::new();
/// t.ialu(0, reg::gpr(0), &[]);
/// t.ialu(1, reg::gpr(0), &[]);
/// t.branch(2, true, 0, &[]);
/// let stats = t.finish().stats();
/// assert_eq!(stats.total(), 3);
/// assert_eq!(stats.count(OpClass::IAlu), 2);
/// assert!((stats.fraction(OpClass::Branch) - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    counts: [u64; OpClass::COUNT],
}

impl TraceStats {
    /// Computes the breakdown of `insts`.
    pub fn from_insts(insts: &[Inst]) -> Self {
        let mut counts = [0u64; OpClass::COUNT];
        for inst in insts {
            counts[inst.op.index()] += 1;
        }
        TraceStats { counts }
    }

    /// Wraps a precomputed per-class count array (used by the packed
    /// trace encoding, which keeps op classes in their own stream).
    pub fn from_counts(counts: [u64; OpClass::COUNT]) -> Self {
        TraceStats { counts }
    }

    /// Total dynamic instruction count (Table III's "trace size").
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Dynamic count of one class.
    pub fn count(&self, op: OpClass) -> u64 {
        self.counts[op.index()]
    }

    /// Fraction of the trace in one class (0 if the trace is empty).
    pub fn fraction(&self, op: OpClass) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(op) as f64 / total as f64
        }
    }

    /// Count of control-transfer instructions.
    pub fn branches(&self) -> u64 {
        self.count(OpClass::Branch)
    }

    /// Count of data-memory instructions (loads + stores, scalar + vector).
    pub fn mem_ops(&self) -> u64 {
        OpClass::ALL
            .iter()
            .filter(|c| c.is_mem())
            .map(|&c| self.count(c))
            .sum()
    }

    /// Count of vector-unit instructions.
    pub fn vector_ops(&self) -> u64 {
        OpClass::ALL
            .iter()
            .filter(|c| c.is_vector())
            .map(|&c| self.count(c))
            .sum()
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &TraceStats) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// Rows `(class, count, fraction)` ordered as in the paper's Fig. 1
    /// legend (other, ctrl, vperm, vsimple, vload, vstore, iload,
    /// istore, ialu), for pretty-printing.
    pub fn figure1_rows(&self) -> Vec<(OpClass, u64, f64)> {
        const ORDER: [OpClass; 9] = [
            OpClass::Other,
            OpClass::Branch,
            OpClass::VPerm,
            OpClass::VSimple,
            OpClass::VLoad,
            OpClass::VStore,
            OpClass::ILoad,
            OpClass::IStore,
            OpClass::IAlu,
        ];
        // Classes not in the paper's legend (fpu, vcmplx, vfpu) fold into
        // "other", matching the paper's grouping of negligible classes.
        let mut rows: Vec<(OpClass, u64, f64)> = ORDER
            .iter()
            .map(|&c| (c, self.count(c), self.fraction(c)))
            .collect();
        let folded =
            self.count(OpClass::Fpu) + self.count(OpClass::VCmplx) + self.count(OpClass::VFpu);
        rows[0].1 += folded;
        let total = self.total();
        if total > 0 {
            rows[0].2 = rows[0].1 as f64 / total as f64;
        }
        rows
    }
}

impl std::fmt::Display for TraceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "total instructions: {}", self.total())?;
        for (op, count, frac) in self.figure1_rows() {
            writeln!(
                f,
                "  {:<8} {:>12}  {:5.1}%",
                op.label(),
                count,
                frac * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg;
    use crate::trace::Tracer;

    fn stats_of(build: impl FnOnce(&mut Tracer)) -> TraceStats {
        let mut t = Tracer::new();
        build(&mut t);
        t.finish().stats()
    }

    #[test]
    fn empty_trace() {
        let s = TraceStats::from_insts(&[]);
        assert_eq!(s.total(), 0);
        assert_eq!(s.fraction(OpClass::IAlu), 0.0);
    }

    #[test]
    fn aggregate_queries() {
        let s = stats_of(|t| {
            t.iload(0, reg::gpr(0), 0x1000_0000, 4, &[]);
            t.istore(1, 0x1000_0000, 4, &[reg::gpr(0)]);
            t.vload(2, reg::vr(0), 0x1000_0000, 16, &[]);
            t.vsimple(3, reg::vr(0), &[]);
            t.branch(4, true, 0, &[]);
        });
        assert_eq!(s.total(), 5);
        assert_eq!(s.mem_ops(), 3);
        assert_eq!(s.vector_ops(), 2);
        assert_eq!(s.branches(), 1);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = stats_of(|t| t.ialu(0, reg::gpr(0), &[]));
        let b = stats_of(|t| {
            t.ialu(0, reg::gpr(0), &[]);
            t.branch(1, true, 0, &[]);
        });
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count(OpClass::IAlu), 2);
    }

    #[test]
    fn figure1_folds_rare_classes_into_other() {
        let s = stats_of(|t| {
            t.fpu(0, reg::fpr(0), &[]);
            t.vcmplx(1, reg::vr(0), &[]);
            t.vfpu(2, reg::vr(0), &[]);
            t.other(3, reg::gpr(0), &[]);
        });
        let rows = s.figure1_rows();
        assert_eq!(rows[0].0, OpClass::Other);
        assert_eq!(rows[0].1, 4);
        assert!((rows[0].2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fractions_sum_to_one() {
        let s = stats_of(|t| {
            for i in 0..10 {
                t.ialu(i, reg::gpr(0), &[]);
            }
            t.branch(10, false, 0, &[]);
            t.iload(11, reg::gpr(1), 0x1000_0000, 4, &[]);
        });
        let sum: f64 = s.figure1_rows().iter().map(|r| r.2).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}

/// Per-PC execution profile: how often each static instruction site
/// executed. The workload modules use this to verify their loop
/// structure; it is also handy for finding a trace's hot loops.
#[derive(Debug, Clone, Default)]
pub struct SiteProfile {
    counts: std::collections::HashMap<u32, u64>,
}

impl SiteProfile {
    /// Profiles `insts`.
    pub fn from_insts(insts: &[Inst]) -> Self {
        let mut counts = std::collections::HashMap::new();
        for inst in insts {
            *counts.entry(inst.pc).or_insert(0u64) += 1;
        }
        SiteProfile { counts }
    }

    /// Number of distinct static sites.
    pub fn site_count(&self) -> usize {
        self.counts.len()
    }

    /// Execution count of the instruction at `pc`.
    pub fn count(&self, pc: u32) -> u64 {
        self.counts.get(&pc).copied().unwrap_or(0)
    }

    /// The `k` hottest sites, `(pc, count)`, descending.
    pub fn hottest(&self, k: usize) -> Vec<(u32, u64)> {
        let mut rows: Vec<(u32, u64)> = self.counts.iter().map(|(&pc, &c)| (pc, c)).collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows.truncate(k);
        rows
    }

    /// Fraction of dynamic instructions covered by the `k` hottest
    /// sites — a code-footprint locality measure (the workloads in
    /// this suite concentrate >90% of execution in tiny inner loops,
    /// which is why their I-cache behaviour is so benign).
    pub fn coverage(&self, k: usize) -> f64 {
        let total: u64 = self.counts.values().sum();
        if total == 0 {
            return 0.0;
        }
        let top: u64 = self.hottest(k).iter().map(|r| r.1).sum();
        top as f64 / total as f64
    }
}

#[cfg(test)]
mod site_tests {
    use super::*;
    use crate::reg;
    use crate::trace::Tracer;

    #[test]
    fn profile_counts_sites() {
        let mut t = Tracer::new();
        for _ in 0..10 {
            t.ialu(5, reg::gpr(0), &[]);
        }
        t.ialu(9, reg::gpr(0), &[]);
        let tr = t.finish();
        let p = SiteProfile::from_insts(tr.insts());
        assert_eq!(p.site_count(), 2);
        assert_eq!(p.count(tr.insts()[0].pc), 10);
        let hot = p.hottest(1);
        assert_eq!(hot[0].1, 10);
        assert!((p.coverage(1) - 10.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn empty_profile() {
        let p = SiteProfile::from_insts(&[]);
        assert_eq!(p.site_count(), 0);
        assert_eq!(p.coverage(3), 0.0);
    }
}
