//! `FASTA34`: the traced k-tuple heuristic search.
//!
//! The instrumented pipeline mirrors fasta34's protein search: a
//! streaming scan packs a 2-mer per subject position and looks it up in
//! the query's k-tuple table (small — about 1.6 KB of starts, so FASTA
//! is *not* memory-bound, unlike BLAST); each word match updates
//! per-diagonal run-scoring state with data-dependent branches (the
//! source of FASTA's branch-predictor-bound profile in the paper);
//! surviving regions are rescored and the best region is optimized with
//! banded Smith-Waterman (`opt`).
//!
//! Scores equal [`sapa_align::fasta::score_subject`]'s.

use sapa_align::fasta::{pack, FastaParams, FastaScores, KtupIndex};
use sapa_align::result::{Hit, TopK};
use sapa_bioseq::matrix::GapPenalties;
use sapa_bioseq::{AminoAcid, Sequence, SubstitutionMatrix};
use sapa_isa::mem::AddressSpace;
use sapa_isa::reg::{self, Reg};
use sapa_isa::trace::{Trace, Tracer};

use crate::layout::DbImage;

/// Result of a traced FASTA run.
#[derive(Debug, Clone)]
pub struct FastaRun {
    /// The instruction trace of the whole search.
    pub trace: Trace,
    /// FASTA's (init1, initn, opt) triple per subject.
    pub scores: Vec<FastaScores>,
    /// Ranked hit list (by `max(opt, initn)`).
    pub hits: Vec<Hit>,
}

mod site {
    pub const LD_DB: u32 = 0;
    pub const WORD_SHIFT: u32 = 1;
    pub const CMP_STD: u32 = 2;
    pub const B_STD: u32 = 3;
    pub const LD_START: u32 = 4;
    pub const LD_END: u32 = 5;
    pub const CMP_EMPTY: u32 = 6;
    pub const B_EMPTY: u32 = 7;
    pub const LD_POS: u32 = 8;
    pub const DIAG: u32 = 9;
    pub const LD_RUN: u32 = 10; // run_score[diag]
    pub const LD_LASTEND: u32 = 11; // last_end[diag]
    pub const DECAY_SUB: u32 = 12;
    pub const CMP_DEAD: u32 = 13;
    pub const B_DEAD: u32 = 14; // run died?
    pub const RUN_ADD: u32 = 15;
    pub const ST_RUN: u32 = 16;
    pub const ST_LASTEND: u32 = 17;
    pub const CMP_PEAK: u32 = 18;
    pub const B_PEAK: u32 = 19; // region candidate?
    pub const SAVE_CMP: u32 = 20;
    pub const SAVE_B: u32 = 21;
    pub const SAVE_ST: u32 = 22;
    pub const RESC_LD: u32 = 24; // region rescoring loads
    pub const RESC_ADD: u32 = 25;
    pub const RESC_MAX: u32 = 26;
    pub const RESC_CMP: u32 = 27;
    pub const RESC_B: u32 = 28;
    pub const OPT_LD_SS: u32 = 29; // banded opt DP
    pub const OPT_LD_P: u32 = 30;
    pub const OPT_ADD: u32 = 31;
    pub const OPT_MAX1: u32 = 32;
    pub const OPT_MAX2: u32 = 33;
    pub const OPT_ST: u32 = 34;
    pub const OPT_CMP: u32 = 35;
    pub const OPT_B: u32 = 36;
    pub const INC: u32 = 37;
    pub const B_SCAN: u32 = 38;
    pub const TOP: u32 = 0;
}

const R_DB: Reg = reg::gpr(3);
const R_WORD: Reg = reg::gpr(4);
const R_START: Reg = reg::gpr(5);
const R_END: Reg = reg::gpr(6);
const R_POS: Reg = reg::gpr(7);
const R_DIAG: Reg = reg::gpr(8);
const R_RUN: Reg = reg::gpr(9);
const R_LASTE: Reg = reg::gpr(10);
const R_CMP: Reg = reg::gpr(12);
const R_PTR: Reg = reg::gpr(13);
const R_SC: Reg = reg::gpr(14);
const R_ACC: Reg = reg::gpr(15);

/// Runs the traced FASTA search of `query` against `db`.
pub fn run(
    query: &[AminoAcid],
    db: &[Sequence],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
    params: &FastaParams,
    keep: usize,
) -> FastaRun {
    let m = query.len();
    let index = KtupIndex::build(query, params.ktup);
    let table = 20usize.pow(params.ktup as u32);

    let mut space = AddressSpace::new();
    let img = DbImage::build(&mut space, db);
    let starts_region = space
        .alloc("ktup_starts", 4 * (table + 1) as u64, 128)
        .expect("starts fit");
    let pos_region = space
        .alloc("ktup_positions", 4 * m.max(1) as u64, 128)
        .expect("positions fit");
    let max_n: usize = db.iter().map(Sequence::len).max().unwrap_or(0);
    let diag_region = space
        .alloc("diag_state", 12 * (m + max_n).max(1) as u64, 128)
        .expect("diag state fits");
    let band_region = space
        .alloc(
            "opt_band",
            8 * (2 * params.band_width + 1).max(1) as u64,
            128,
        )
        .expect("band fits");
    let matrix_region = space.alloc("matrix", 24 * 24, 128).expect("matrix fits");

    let mut t = Tracer::with_capacity(1024);
    let mut all_scores = Vec::with_capacity(db.len());
    let mut results = TopK::new(keep.max(1));

    for si in 0..img.len() {
        let subject = img.subject(si);
        let n = subject.len();
        let ktup = params.ktup;
        if n < ktup || m < ktup {
            all_scores.push(FastaScores::default());
            continue;
        }

        // --- Phase 1: traced scan & diagonal accumulation. The state
        // transitions reproduce sapa_align::fasta's scan exactly; the
        // final scores are delegated to the reference for the phases
        // whose bookkeeping we also emit below.
        let ndiag = m + n;
        let mut run_score = vec![0i32; ndiag];
        let mut last_end = vec![-1i32; ndiag];
        const WORD_BONUS: i32 = 4;
        const GAP_DECAY: i32 = 1;

        for j in 0..=(n - ktup) {
            t.iload(
                site::LD_DB,
                R_DB,
                img.residue_addr(si, j + ktup - 1),
                1,
                &[R_PTR],
            );
            t.ialu(site::WORD_SHIFT, R_WORD, &[R_WORD, R_DB]);
            let word = pack(subject, j, ktup);
            t.ialu(site::CMP_STD, R_CMP, &[R_DB]);
            t.branch(site::B_STD, word.is_none(), site::TOP, &[R_CMP]);
            if let Some(word) = word {
                t.iload(
                    site::LD_START,
                    R_START,
                    starts_region.addr(4 * word as u32),
                    4,
                    &[R_WORD],
                );
                t.iload(
                    site::LD_END,
                    R_END,
                    starts_region.addr(4 * (word as u32 + 1)),
                    4,
                    &[R_WORD],
                );
                let bucket = index.lookup(word);
                t.ialu(site::CMP_EMPTY, R_CMP, &[R_START, R_END]);
                t.branch(site::B_EMPTY, bucket.is_empty(), site::TOP, &[R_CMP]);

                for (k, &qi) in bucket.iter().enumerate() {
                    let i = qi as usize;
                    let d = j + m - i;
                    let jj = j as i32;

                    t.iload(
                        site::LD_POS,
                        R_POS,
                        pos_region.addr((4 * k as u32) % pos_region.size().max(4)),
                        4,
                        &[R_START],
                    );
                    t.ialu(site::DIAG, R_DIAG, &[R_POS]);
                    t.iload(
                        site::LD_RUN,
                        R_RUN,
                        diag_region.addr((12 * d as u32) % diag_region.size().max(12)),
                        4,
                        &[R_DIAG],
                    );
                    t.iload(
                        site::LD_LASTEND,
                        R_LASTE,
                        diag_region.addr((12 * d as u32 + 4) % diag_region.size().max(12)),
                        4,
                        &[R_DIAG],
                    );

                    let gap = jj - last_end[d];
                    let decayed = run_score[d] - gap.max(0) * GAP_DECAY;
                    t.ialu(site::DECAY_SUB, R_RUN, &[R_RUN, R_LASTE]);
                    t.ialu(site::CMP_DEAD, R_CMP, &[R_RUN]);
                    t.branch(site::B_DEAD, decayed <= 0, site::TOP, &[R_CMP]);
                    if decayed <= 0 {
                        run_score[d] = WORD_BONUS;
                    } else {
                        run_score[d] = decayed + WORD_BONUS;
                    }
                    last_end[d] = jj + ktup as i32;
                    t.ialu(site::RUN_ADD, R_RUN, &[R_RUN]);
                    t.istore(
                        site::ST_RUN,
                        diag_region.addr((12 * d as u32) % diag_region.size().max(12)),
                        4,
                        &[R_RUN, R_DIAG],
                    );
                    t.istore(
                        site::ST_LASTEND,
                        diag_region.addr((12 * d as u32 + 4) % diag_region.size().max(12)),
                        4,
                        &[R_POS, R_DIAG],
                    );

                    let peak = run_score[d] >= WORD_BONUS * 2;
                    t.ialu(site::CMP_PEAK, R_CMP, &[R_RUN]);
                    t.branch(site::B_PEAK, peak, site::TOP, &[R_CMP]);
                    if peak {
                        // savemax bookkeeping.
                        t.ialu(site::SAVE_CMP, R_CMP, &[R_RUN, R_ACC]);
                        t.branch(site::SAVE_B, run_score[d] > 8, site::TOP, &[R_CMP]);
                        t.istore(
                            site::SAVE_ST,
                            diag_region.addr((12 * d as u32 + 8) % diag_region.size().max(12)),
                            4,
                            &[R_RUN],
                        );
                    }
                }
            }
            t.ialu(site::INC, R_PTR, &[R_PTR]);
            t.branch(site::B_SCAN, j + ktup < n, site::TOP, &[R_PTR]);
        }

        // --- Phases 2–4 delegate the arithmetic to the reference and
        // emit the corresponding loop instructions.
        let scores = sapa_align::fasta::score_subject(&index, subject, matrix, gaps, params);

        // Region rescoring: a matrix walk over ~max_regions short spans.
        if scores.init1 > 0 {
            let span = 24usize.min(n);
            for r in 0..params.max_regions.min(4) {
                for x in 0..span {
                    t.iload(
                        site::RESC_LD,
                        R_SC,
                        img.residue_addr(si, (x + r) % n),
                        1,
                        &[R_PTR],
                    );
                    t.ialu(site::RESC_ADD, R_ACC, &[R_ACC, R_SC]);
                    t.ialu(site::RESC_MAX, R_ACC, &[R_ACC]);
                }
                t.ialu(site::RESC_CMP, R_CMP, &[R_ACC]);
                t.branch(
                    site::RESC_B,
                    r + 1 < params.max_regions.min(4),
                    site::RESC_LD,
                    &[R_CMP],
                );
            }
        }

        // Banded `opt` DP when the threshold was met.
        if scores.opt > 0 {
            let band = 2 * params.band_width + 1;
            for i in 0..m {
                for off in (0..band).step_by(2) {
                    let cell = band_region.addr((8 * off as u32) % band_region.size().max(8));
                    t.iload(site::OPT_LD_SS, R_SC, cell, 8, &[R_PTR]);
                    t.iload(
                        site::OPT_LD_P,
                        R_POS,
                        matrix_region.addr(((i * 24) % 576) as u32),
                        1,
                        &[R_PTR],
                    );
                    t.ialu(site::OPT_ADD, R_ACC, &[R_SC, R_POS]);
                    t.ialu(site::OPT_MAX1, R_ACC, &[R_ACC, R_SC]);
                    // The DP max takes a data-dependent path per cell.
                    let positive = matrix.score(query[i], subject[(i + off) % n]) > 0;
                    t.branch(site::OPT_B, positive, site::OPT_LD_SS, &[R_ACC]);
                    t.ialu(site::OPT_MAX2, R_ACC, &[R_ACC, R_CMP]);
                    t.istore(site::OPT_ST, cell, 8, &[R_ACC]);
                }
                t.ialu(site::OPT_CMP, R_CMP, &[R_ACC]);
                t.branch(site::OPT_B, i + 1 < m, site::OPT_LD_SS, &[R_CMP]);
            }
        }

        let reported = scores.opt.max(scores.initn);
        if reported >= params.min_report_score {
            results.push(Hit {
                seq_index: si,
                score: reported,
            });
        }
        all_scores.push(scores);
    }

    let hits = results.finish().into_hits();
    FastaRun {
        trace: t.finish(),
        scores: all_scores,
        hits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapa_align::fasta as ref_fasta;
    use sapa_isa::OpClass;

    fn seq(id: &str, s: &str) -> Sequence {
        Sequence::from_str(id, s).unwrap()
    }

    fn inputs() -> (Vec<AminoAcid>, Vec<Sequence>) {
        let q = seq("q", "MKWVTFISLLFLFSSAYSRGVFRRDAHKSEVAHRFK")
            .residues()
            .to_vec();
        let db = vec![
            seq("s0", "GGPGGNDNDNPPGGAAGGPGGNDNDNPPGGAA"),
            seq("s1", "MKWVTFISLLFLFSSAYSRGVFRRDAHKSEVAHRFK"),
            seq("s2", "AAWWYYHHEEKKRRDDAAWWYYHHEEKKRRDD"),
        ];
        (q, db)
    }

    #[test]
    fn scores_match_reference_fasta() {
        let (q, db) = inputs();
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();
        let p = FastaParams::default();
        let run = run(&q, &db, &m, g, &p, 10);
        let idx = ref_fasta::KtupIndex::build(&q, p.ktup);
        for (i, s) in db.iter().enumerate() {
            let expect = ref_fasta::score_subject(&idx, s.residues(), &m, g, &p);
            assert_eq!(run.scores[i], expect, "subject {i}");
        }
    }

    #[test]
    fn homolog_is_top_hit() {
        let (q, db) = inputs();
        let m = SubstitutionMatrix::blosum62();
        let run = run(
            &q,
            &db,
            &m,
            GapPenalties::paper(),
            &FastaParams::default(),
            10,
        );
        assert!(!run.hits.is_empty());
        assert_eq!(run.hits[0].seq_index, 1);
    }

    #[test]
    fn instruction_mix_matches_figure_1_shape() {
        let (q, db) = inputs();
        let m = SubstitutionMatrix::blosum62();
        let run = run(
            &q,
            &db,
            &m,
            GapPenalties::paper(),
            &FastaParams::default(),
            10,
        );
        let stats = run.trace.stats();
        let ialu = stats.fraction(OpClass::IAlu);
        let iload = stats.fraction(OpClass::ILoad);
        let ctrl = stats.fraction(OpClass::Branch);
        // Paper Fig. 1 FASTA: ~48% ialu, ~17% iload, ~18% ctrl.
        assert!((0.33..0.60).contains(&ialu), "ialu {ialu}");
        assert!((0.12..0.32).contains(&iload), "iload {iload}");
        assert!((0.10..0.28).contains(&ctrl), "ctrl {ctrl}");
        assert_eq!(stats.vector_ops(), 0);
    }

    #[test]
    fn trace_size_sits_between_blast_and_ssearch() {
        let (q, db) = inputs();
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();
        let fasta = run(&q, &db, &m, g, &FastaParams::default(), 10).trace.len();
        let blast = crate::blast::run(
            &q,
            &db,
            &m,
            g,
            &sapa_align::blast::BlastParams::default(),
            10,
        )
        .trace
        .len();
        let ssearch = crate::ssearch::run(&q, &db, &m, g, 10).trace.len();
        assert!(fasta < ssearch, "fasta {fasta} !< ssearch {ssearch}");
        assert!(blast < ssearch, "blast {blast} !< ssearch {ssearch}");
    }
}
