//! Figure 7: IPC vs L1 hit latency (1 … 10 cycles, 32K/32K/1M, 4-way).

use crate::context::Context;
use crate::format::{f2, heading, Table};
use sapa_cpu::config::{BranchConfig, MemConfig, SimConfig};
use sapa_workloads::Workload;

/// Swept L1 hit latencies.
pub const LATENCIES: [u32; 6] = [1, 2, 4, 6, 8, 10];

fn config_for(latency: u32) -> SimConfig {
    let mut mem = MemConfig::me1();
    mem.name = format!("l1lat-{latency}");
    mem.dl1.latency = latency;
    mem.il1.latency = latency;
    SimConfig {
        cpu: sapa_cpu::config::CpuConfig::four_way(),
        mem,
        branch: BranchConfig::table_vi(),
    }
}

/// One measured point.
pub fn point(ctx: &mut Context, w: Workload, latency: u32) -> f64 {
    ctx.sim(w, &config_for(latency)).ipc()
}

/// Renders Figure 7.
pub fn run(ctx: &mut Context) -> String {
    let mut out = heading("Figure 7 — IPC vs L1 hit latency (4-way, 32K/32K/1M)");
    let points: Vec<_> = Workload::ALL
        .into_iter()
        .flat_map(|w| LATENCIES.into_iter().map(move |l| (w, config_for(l))))
        .collect();
    ctx.sim_batch(&points);
    let mut t = Table::new(&["workload", "L1 latency", "IPC"]);
    for w in Workload::ALL {
        for lat in LATENCIES {
            t.row_owned(vec![
                w.label().to_string(),
                lat.to_string(),
                f2(point(ctx, w, lat)),
            ]);
        }
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn higher_latency_never_helps() {
        let mut ctx = Context::new(Scale::Tiny);
        for w in [Workload::SwVmx128, Workload::Blast] {
            let fast = point(&mut ctx, w, 1);
            let slow = point(&mut ctx, w, 10);
            assert!(slow <= fast + 1e-9, "{w}: {slow} > {fast}");
        }
    }

    #[test]
    fn simd_is_most_latency_sensitive() {
        // The paper's Figure 7 ordering (SIMD loses the most IPC as L1
        // latency grows) is a property of the conservative machine it
        // was calibrated on: the scoreboard oracle. The speculative
        // model forwards the striped store→load chains out of the store
        // queue, so its SIMD runs never pay the miss path and retain
        // more IPC than scalar FASTA.
        use sapa_cpu::config::IssueModel;
        let mut ctx = Context::new(Scale::Small);
        let mut rel = |w: Workload, model: IssueModel| {
            let mut fast = config_for(1);
            fast.cpu.issue_model = model;
            let mut slow = config_for(10);
            slow.cpu.issue_model = model;
            ctx.sim(w, &slow).ipc() / ctx.sim(w, &fast).ipc()
        };
        let simd = rel(Workload::SwVmx128, IssueModel::Scoreboard);
        let fasta = rel(Workload::Fasta34, IssueModel::Scoreboard);
        assert!(simd < fasta + 0.05, "simd {simd} vs fasta {fasta}");
        // Under the speculative model both workloads still degrade
        // materially — latency is hidden, not erased.
        for w in [Workload::SwVmx128, Workload::Fasta34] {
            let r = rel(w, IssueModel::OutOfOrder);
            assert!(r < 0.95, "{w}: retention {r} too flat");
        }
    }
}
