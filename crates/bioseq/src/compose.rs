//! Background amino-acid composition of SwissProt.
//!
//! The synthetic database generator draws residues from the overall
//! amino-acid frequencies observed in UniProtKB/Swiss-Prot (values in
//! percent, as published in the Swiss-Prot release statistics; they have
//! been stable to the first decimal for decades). Using the real
//! background composition matters for this reproduction: it determines
//! the fan-out of BLAST's neighborhood word index and the hit rates of
//! FASTA's k-tuple lookup, which in turn drive the memory-system and
//! branch behaviour the paper characterizes.

use crate::alphabet::AminoAcid;

/// Swiss-Prot amino-acid frequencies (fraction of residues), indexed by
/// [`AminoAcid::index`] over the twenty standard residues.
pub const SWISSPROT_FREQUENCIES: [f64; AminoAcid::STANDARD_COUNT] = [
    0.0826, // A
    0.0553, // R
    0.0406, // N
    0.0546, // D
    0.0137, // C
    0.0393, // Q
    0.0674, // E
    0.0708, // G
    0.0227, // H
    0.0593, // I
    0.0966, // L
    0.0582, // K
    0.0241, // M
    0.0386, // F
    0.0472, // P
    0.0660, // S
    0.0535, // T
    0.0110, // W
    0.0292, // Y
    0.0687, // V
];

/// Returns the cumulative distribution over the standard residues,
/// normalized so the final entry is exactly `1.0`.
pub fn swissprot_cdf() -> [f64; AminoAcid::STANDARD_COUNT] {
    let total: f64 = SWISSPROT_FREQUENCIES.iter().sum();
    let mut cdf = [0.0; AminoAcid::STANDARD_COUNT];
    let mut acc = 0.0;
    for (i, f) in SWISSPROT_FREQUENCIES.iter().enumerate() {
        acc += f / total;
        cdf[i] = acc;
    }
    cdf[AminoAcid::STANDARD_COUNT - 1] = 1.0;
    cdf
}

/// Draws one standard residue from a background `cdf` (as produced by
/// [`swissprot_cdf`]) given a uniform variate `u` in `[0, 1)`.
///
/// Panic-free by construction: the sampled index is clamped into the
/// standard alphabet, so a malformed CDF (too long, not reaching 1.0)
/// degrades to a biased draw instead of a crash in the generator hot
/// loop.
pub fn sample_residue(cdf: &[f64], u: f64) -> AminoAcid {
    let idx = crate::rng::sample_cdf(cdf, u).min(AminoAcid::STANDARD_COUNT - 1);
    AminoAcid::ALL[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequencies_sum_to_one() {
        let total: f64 = SWISSPROT_FREQUENCIES.iter().sum();
        assert!((total - 1.0).abs() < 0.01, "sum {total}");
    }

    #[test]
    fn cdf_is_monotone_and_complete() {
        let cdf = swissprot_cdf();
        let mut prev = 0.0;
        for &c in &cdf {
            assert!(c >= prev);
            prev = c;
        }
        assert_eq!(cdf[AminoAcid::STANDARD_COUNT - 1], 1.0);
    }

    #[test]
    fn leucine_is_most_common() {
        let max = SWISSPROT_FREQUENCIES
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(AminoAcid::from_index(max), Some(AminoAcid::Leu));
    }
}
