//! A minimal, dependency-free JSON layer for the wire protocol.
//!
//! The service speaks one JSON object per line over TCP, and the whole
//! suite is std-only, so this module implements just enough of JSON to
//! carry the protocol: a [`Json`] value tree, a hardened [`parse`], and
//! a deterministic [`Json::render`]. The parser is written for hostile
//! input — the protocol fuzz suite feeds it truncated, garbled, and
//! adversarially nested frames — so it must never panic, never recurse
//! past [`MAX_DEPTH`], and always fail with a typed [`ParseError`]
//! carrying the byte offset of the problem.
//!
//! Deliberate simplifications (documented, not accidental):
//!
//! * Object keys keep insertion order and may repeat; [`Json::get`]
//!   returns the first match. The service never emits duplicates.
//! * Numbers are `f64`. Integers round-trip exactly up to 2^53, which
//!   covers every counter and id the protocol carries; non-finite
//!   results are rejected on parse and rendered as `null` (they cannot
//!   be represented in JSON at all).
//! * Number parsing accepts a small superset of the RFC 8259 grammar
//!   (e.g. a leading `+`), inherited from `f64::from_str`. The renderer
//!   emits only strict JSON.

use std::fmt;
use std::fmt::Write as _;

/// Maximum container nesting [`parse`] accepts before rejecting the
/// input, bounding stack use against `[[[[…`-style nesting bombs.
pub const MAX_DEPTH: usize = 32;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (see the module docs for integer fidelity).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value (convenience over `Json::Str(s.to_string())`).
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    /// An unsigned counter as a number. Values above 2^53 (none of the
    /// service's counters get near it) lose precision but never panic.
    pub fn num_u64(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// An object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// First value under `key` if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as an exact unsigned integer: present only
    /// for whole numbers in `[0, 2^53]`, the range `f64` carries
    /// losslessly.
    pub fn as_u64(&self) -> Option<u64> {
        let v = self.as_f64()?;
        if v >= 0.0 && v.fract() == 0.0 && v <= 9_007_199_254_740_992.0 {
            Some(v as u64)
        } else {
            None
        }
    }

    /// The numeric payload as an exact signed integer (whole numbers
    /// with magnitude ≤ 2^53).
    pub fn as_i64(&self) -> Option<i64> {
        let v = self.as_f64()?;
        if v.fract() == 0.0 && v.abs() <= 9_007_199_254_740_992.0 {
            Some(v as i64)
        } else {
            None
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Renders this value as compact single-line JSON (no newlines ever
    /// appear in the output, so a rendered value is always exactly one
    /// frame of the line-delimited protocol).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => write_num(*v, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Whole numbers within `f64`'s exact range print as integers; other
/// finite values use exponent form (`1.5e2`), which is valid JSON and
/// deterministic. Non-finite values have no JSON spelling and degrade
/// to `null`.
fn write_num(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() <= 9_007_199_254_740_992.0 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v:e}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why [`parse`] rejected its input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending input.
    pub offset: usize,
    /// What went wrong, in one phrase.
    pub reason: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.reason, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON value, rejecting trailing non-whitespace.
///
/// Never panics, whatever the input: nesting is capped at
/// [`MAX_DEPTH`], numbers must be finite, strings must be well-formed
/// (escapes valid, surrogates paired, no raw control bytes).
///
/// # Errors
///
/// Returns a [`ParseError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        b: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.b.len() {
        return Err(p.err("trailing bytes after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            reason,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, reason: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(reason))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting exceeds depth limit"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(c) if c == b'-' || c == b'+' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected byte")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &'static [u8], value: Json) -> Result<Json, ParseError> {
        if self.b[self.pos..].starts_with(text) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            _ => {
                self.pos = start;
                Err(self.err("invalid number"))
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected string")?;
        let mut out: Vec<u8> = Vec::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    // Byte-copied spans split at ASCII quotes/backslashes
                    // and escape expansions are valid UTF-8, so this
                    // cannot fail for `&str` input; the error arm is
                    // pure defense.
                    return String::from_utf8(out).map_err(|_| self.err("invalid utf-8"));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(c) => {
                    out.push(c);
                    self.pos += 1;
                }
            }
        }
    }

    fn escape(&mut self, out: &mut Vec<u8>) -> Result<(), ParseError> {
        let c = self.peek().ok_or_else(|| self.err("truncated escape"))?;
        self.pos += 1;
        let plain = match c {
            b'"' => b'"',
            b'\\' => b'\\',
            b'/' => b'/',
            b'b' => 0x08,
            b'f' => 0x0c,
            b'n' => b'\n',
            b'r' => b'\r',
            b't' => b'\t',
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..=0xDBFF).contains(&hi) {
                    // High surrogate: a `\uXXXX` low surrogate must follow.
                    if self.peek() != Some(b'\\') {
                        return Err(self.err("unpaired surrogate"));
                    }
                    self.pos += 1;
                    if self.peek() != Some(b'u') {
                        return Err(self.err("unpaired surrogate"));
                    }
                    self.pos += 1;
                    let lo = self.hex4()?;
                    if !(0xDC00..=0xDFFF).contains(&lo) {
                        return Err(self.err("unpaired surrogate"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else if (0xDC00..=0xDFFF).contains(&hi) {
                    return Err(self.err("unpaired surrogate"));
                } else {
                    hi
                };
                let ch = char::from_u32(code).ok_or_else(|| self.err("invalid code point"))?;
                let mut buf = [0u8; 4];
                out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                return Ok(());
            }
            _ => return Err(self.err("unknown escape")),
        };
        out.push(plain);
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[', "expected array")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected , or ] in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{', "expected object")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected : after key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected , or } in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "42", "-17"] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&v.render()).unwrap(), v, "{text}");
        }
        assert_eq!(parse("3.5").unwrap(), Json::Num(3.5));
        assert_eq!(parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(
            parse(r#""hi\n\"there\"""#).unwrap().as_str(),
            Some("hi\n\"there\"")
        );
    }

    #[test]
    fn structures_round_trip() {
        let text = r#"{"op":"search","id":7,"nested":[1,2,{"deep":null}],"ok":true}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.render(), text);
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("op").and_then(Json::as_str), Some("search"));
        assert_eq!(
            v.get("nested").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(parse(r#""A""#).unwrap().as_str(), Some("A"));
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("😀"));
        assert!(parse(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(parse(r#""\ude00""#).is_err(), "lone low surrogate");
        assert!(parse(r#""\ud83dx""#).is_err(), "unpaired high surrogate");
    }

    #[test]
    fn depth_bomb_is_rejected_not_overflowed() {
        let bomb = "[".repeat(10_000);
        let err = parse(&bomb).unwrap_err();
        assert_eq!(err.reason, "nesting exceeds depth limit");
        // Just inside the limit parses fine.
        let ok = format!("{}{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn malformed_inputs_fail_with_offsets() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "[1 2]",
            "{\"a\"}",
            "{\"a\":}",
            "{a:1}",
            "tru",
            "nul",
            "1.2.3",
            "1e",
            "--4",
            "\"unterminated",
            "\"bad \\x escape\"",
            "\"ctl \u{1} byte\"",
            "{} trailing",
            "NaN",
            "inf",
        ] {
            let err = parse(bad).unwrap_err();
            assert!(err.offset <= bad.len(), "{bad:?}: offset {}", err.offset);
        }
    }

    #[test]
    fn integer_fidelity_and_exponent_rendering() {
        assert_eq!(
            Json::num_u64(9_007_199_254_740_992).render(),
            "9007199254740992"
        );
        assert_eq!(Json::Num(0.5).render(), "5e-1");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
        assert_eq!(parse("5e-1").unwrap().as_u64(), None);
        assert_eq!(parse("12").unwrap().as_i64(), Some(12));
        assert_eq!(parse("-12").unwrap().as_u64(), None);
    }

    #[test]
    fn control_chars_render_escaped() {
        let v = Json::str("a\u{2}b\tc");
        assert_eq!(v.render(), "\"a\\u0002b\\tc\"");
        assert_eq!(parse(&v.render()).unwrap(), v);
        assert!(!Json::str("multi\nline").render().contains('\n'));
    }
}
