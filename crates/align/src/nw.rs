//! Needleman-Wunsch global alignment with affine gaps (Gotoh).
//!
//! Provided as the classical dynamic-programming baseline the paper's
//! Section I describes (reference 19 of its bibliography); used by tests and the
//! ablation benches as a second oracle for the gap machinery.

use sapa_bioseq::matrix::GapPenalties;
use sapa_bioseq::{AminoAcid, SubstitutionMatrix};

use crate::sw::NEG;

/// Computes the optimal *global* alignment score of `a` vs `b`
/// (end-to-end, gaps charged everywhere), linear memory.
///
/// Empty-vs-non-empty inputs score as one long gap; two empty inputs
/// score 0.
pub fn score(
    a: &[AminoAcid],
    b: &[AminoAcid],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
) -> i32 {
    let n = b.len();
    let open_ext = gaps.open + gaps.extend;
    let ext = gaps.extend;

    if a.is_empty() {
        return -gaps.gap_cost(n as u32);
    }
    if b.is_empty() {
        return -gaps.gap_cost(a.len() as u32);
    }

    // h[j] = H[i-1][j], f[j] = F[i-1][j]; E carried in registers.
    let mut h = vec![0i32; n + 1];
    let mut f = vec![NEG; n + 1];
    for (j, hj) in h.iter_mut().enumerate().skip(1) {
        *hj = -gaps.gap_cost(j as u32);
    }

    for (i, &ai) in a.iter().enumerate() {
        let mut h_diag = h[0];
        h[0] = -gaps.gap_cost((i + 1) as u32);
        let mut h_left = h[0];
        let mut e_left = NEG;
        for j in 1..=n {
            let e_ij = (e_left - ext).max(h_left - open_ext);
            let f_ij = (f[j] - ext).max(h[j] - open_ext);
            let diag = h_diag + matrix.score(ai, b[j - 1]);
            let h_ij = diag.max(e_ij).max(f_ij);

            h_diag = h[j];
            h[j] = h_ij;
            f[j] = f_ij;
            h_left = h_ij;
            e_left = e_ij;
        }
    }
    h[n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapa_bioseq::Sequence;

    fn seq(s: &str) -> Vec<AminoAcid> {
        Sequence::from_str("t", s).unwrap().residues().to_vec()
    }

    fn bl62() -> SubstitutionMatrix {
        SubstitutionMatrix::blosum62()
    }

    #[test]
    fn both_empty_scores_zero() {
        assert_eq!(score(&[], &[], &bl62(), GapPenalties::paper()), 0);
    }

    #[test]
    fn one_empty_is_one_gap() {
        let a = seq("MKVL");
        let g = GapPenalties::paper();
        assert_eq!(score(&a, &[], &bl62(), g), -14);
        assert_eq!(score(&[], &a, &bl62(), g), -14);
    }

    #[test]
    fn identity_alignment() {
        let a = seq("MKWVTFISLL");
        let m = bl62();
        let expected: i32 = a.iter().map(|&x| m.score(x, x)).sum();
        assert_eq!(score(&a, &a, &m, GapPenalties::paper()), expected);
    }

    #[test]
    fn single_insertion() {
        // Global alignment of X vs X+1 residue must pay one gap.
        let a = seq("MKWVTFISLL");
        let b = seq("MKWVTAFISLL");
        let m = bl62();
        let g = GapPenalties::paper();
        let self_score: i32 = a.iter().map(|&x| m.score(x, x)).sum();
        assert_eq!(score(&a, &b, &m, g), self_score - g.gap_cost(1));
    }

    #[test]
    fn global_is_at_most_local() {
        let m = bl62();
        let g = GapPenalties::paper();
        let a = seq("MKVLAAGWWYHE");
        let b = seq("PPPMKVLPPP");
        assert!(score(&a, &b, &m, g) <= crate::sw::score(&a, &b, &m, g));
    }

    #[test]
    fn symmetric() {
        let m = bl62();
        let g = GapPenalties::paper();
        let a = seq("ACDEFGHIKL");
        let b = seq("ACDFGHIKL");
        assert_eq!(score(&a, &b, &m, g), score(&b, &a, &m, g));
    }
}

/// An explicit global alignment produced by [`align`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalAlignment {
    /// End-to-end score.
    pub score: i32,
    /// Edit operations covering both sequences completely.
    pub ops: Vec<crate::sw::AlignOp>,
}

/// Computes the optimal global alignment with traceback
/// (`O(len(a)·len(b))` memory).
pub fn align(
    a: &[AminoAcid],
    b: &[AminoAcid],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
) -> GlobalAlignment {
    use crate::sw::AlignOp;

    let m = a.len();
    let n = b.len();
    let open_ext = gaps.open + gaps.extend;
    let ext = gaps.extend;
    let idx = |i: usize, j: usize| i * (n + 1) + j;

    let mut h = vec![NEG; (m + 1) * (n + 1)];
    let mut e = vec![NEG; (m + 1) * (n + 1)];
    let mut f = vec![NEG; (m + 1) * (n + 1)];
    h[idx(0, 0)] = 0;
    for j in 1..=n {
        e[idx(0, j)] = -gaps.gap_cost(j as u32);
        h[idx(0, j)] = e[idx(0, j)];
    }
    for i in 1..=m {
        f[idx(i, 0)] = -gaps.gap_cost(i as u32);
        h[idx(i, 0)] = f[idx(i, 0)];
    }
    for i in 1..=m {
        for j in 1..=n {
            e[idx(i, j)] = (e[idx(i, j - 1)] - ext).max(h[idx(i, j - 1)] - open_ext);
            f[idx(i, j)] = (f[idx(i - 1, j)] - ext).max(h[idx(i - 1, j)] - open_ext);
            let diag = h[idx(i - 1, j - 1)] + matrix.score(a[i - 1], b[j - 1]);
            h[idx(i, j)] = diag.max(e[idx(i, j)]).max(f[idx(i, j)]);
        }
    }

    // Traceback from the corner.
    let mut ops = Vec::new();
    let (mut i, mut j) = (m, n);
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        H,
        E,
        F,
    }
    let mut state = State::H;
    while i > 0 || j > 0 {
        match state {
            State::H => {
                let v = h[idx(i, j)];
                if i > 0 && j > 0 && v == h[idx(i - 1, j - 1)] + matrix.score(a[i - 1], b[j - 1]) {
                    ops.push(AlignOp::Subst);
                    i -= 1;
                    j -= 1;
                } else if j > 0 && v == e[idx(i, j)] {
                    state = State::E;
                } else {
                    state = State::F;
                }
            }
            State::E => {
                ops.push(AlignOp::Insert);
                if e[idx(i, j)] == h[idx(i, j - 1)] - open_ext {
                    state = State::H;
                }
                j -= 1;
            }
            State::F => {
                ops.push(AlignOp::Delete);
                if f[idx(i, j)] == h[idx(i - 1, j)] - open_ext {
                    state = State::H;
                }
                i -= 1;
            }
        }
    }
    ops.reverse();
    GlobalAlignment {
        score: h[idx(m, n)],
        ops,
    }
}

/// Computes the optimal *semi-global* ("glocal") score: `a` must align
/// end-to-end, but leading and trailing residues of `b` are free —
/// the natural scoring for finding a short query inside a long
/// subject. Linear memory.
pub fn semiglobal_score(
    a: &[AminoAcid],
    b: &[AminoAcid],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
) -> i32 {
    let n = b.len();
    if a.is_empty() {
        return 0;
    }
    if b.is_empty() {
        return -gaps.gap_cost(a.len() as u32);
    }
    let open_ext = gaps.open + gaps.extend;
    let ext = gaps.extend;

    // Row 0 is free (leading b residues unpenalized).
    let mut h = vec![0i32; n + 1];
    let mut f = vec![NEG; n + 1];
    for (i, &ai) in a.iter().enumerate() {
        let mut h_diag = h[0];
        h[0] = -gaps.gap_cost((i + 1) as u32);
        let mut h_left = h[0];
        let mut e_left = NEG;
        for j in 1..=n {
            let e_ij = (e_left - ext).max(h_left - open_ext);
            let f_ij = (f[j] - ext).max(h[j] - open_ext);
            let diag = h_diag + matrix.score(ai, b[j - 1]);
            let h_ij = diag.max(e_ij).max(f_ij);
            h_diag = h[j];
            h[j] = h_ij;
            f[j] = f_ij;
            h_left = h_ij;
            e_left = e_ij;
        }
    }
    // Trailing b residues are free: best over the last row.
    h.iter().skip(1).copied().max().unwrap_or(h[n]).max(h[0])
}

#[cfg(test)]
mod global_align_tests {
    use super::*;
    use crate::sw::AlignOp;
    use sapa_bioseq::Sequence;

    fn seq(s: &str) -> Vec<AminoAcid> {
        Sequence::from_str("t", s).unwrap().residues().to_vec()
    }

    fn bl62() -> SubstitutionMatrix {
        SubstitutionMatrix::blosum62()
    }

    #[test]
    fn traceback_score_matches_linear_score() {
        let m = bl62();
        let g = GapPenalties::paper();
        let cases = [
            ("MKWVTFISLL", "MKWVTAFISLL"),
            ("HEAGAWGHEE", "PAWHEAE"),
            ("ACD", "ACD"),
            ("A", "WWWW"),
        ];
        for (x, y) in cases {
            let a = seq(x);
            let b = seq(y);
            let al = align(&a, &b, &m, g);
            assert_eq!(al.score, score(&a, &b, &m, g), "{x} vs {y}");
            // Ops must consume both sequences exactly.
            let consumed_a = al.ops.iter().filter(|o| **o != AlignOp::Insert).count();
            let consumed_b = al.ops.iter().filter(|o| **o != AlignOp::Delete).count();
            assert_eq!(consumed_a, a.len());
            assert_eq!(consumed_b, b.len());
        }
    }

    #[test]
    fn semiglobal_finds_embedded_query() {
        let m = bl62();
        let g = GapPenalties::paper();
        let query = seq("MKWVTFWWYHE");
        let subject = seq(&format!("{}{}{}", "PGPGPG", "MKWVTFWWYHE", "NDNDND"));
        let self_score: i32 = query.iter().map(|&x| m.score(x, x)).sum();
        assert_eq!(semiglobal_score(&query, &subject, &m, g), self_score);
        // Global alignment must pay for the flanks; semi-global not.
        assert!(score(&query, &subject, &m, g) < self_score);
    }

    #[test]
    fn semiglobal_bounded_by_local() {
        let m = bl62();
        let g = GapPenalties::paper();
        let a = seq("MKVLAAGWWY");
        let b = seq("GGGKVLGWWGGG");
        let semi = semiglobal_score(&a, &b, &m, g);
        let local = crate::sw::score(&a, &b, &m, g);
        assert!(semi <= local, "semi {semi} > local {local}");
    }

    #[test]
    fn semiglobal_empty_inputs() {
        let m = bl62();
        let g = GapPenalties::paper();
        assert_eq!(semiglobal_score(&[], &seq("AC"), &m, g), 0);
        assert_eq!(semiglobal_score(&seq("ACD"), &[], &m, g), -13);
    }
}
