//! Smith-Waterman local alignment with affine gaps (Gotoh).
//!
//! Three implementations of the same score:
//!
//! * [`score`] — the textbook Gotoh recurrence, linear memory. This is
//!   the oracle the SIMD and lazy-F variants are verified against.
//! * [`score_lazy_f`] — the SSEARCH34-style formulation of Listing 2 of
//!   the paper: the vertical-gap (`F`) state is only materialized when
//!   the running `H` is high enough to open a gap, which skips most of
//!   the work on dissimilar sequences at the price of highly
//!   data-dependent branches. Produces identical scores.
//! * [`align`] — full-matrix traceback producing a [`LocalAlignment`].
//!
//! Recurrence (positive-cost penalties, `q = open`, `r = extend`):
//!
//! ```text
//! E[i][j] = max(E[i][j-1] - r, H[i][j-1] - q - r)      horizontal gap
//! F[i][j] = max(F[i-1][j] - r, H[i-1][j] - q - r)      vertical gap
//! H[i][j] = max(0, H[i-1][j-1] + s(a_i, b_j), E[i][j], F[i][j])
//! score   = max over all i, j of H[i][j]
//! ```

use sapa_bioseq::matrix::GapPenalties;
use sapa_bioseq::{AminoAcid, SubstitutionMatrix};

/// Negative infinity stand-in that survives repeated subtraction.
pub(crate) const NEG: i32 = i32::MIN / 4;

/// Computes the optimal local alignment score of `a` vs `b`.
///
/// Linear memory (two rows), `O(len(a) · len(b))` time. Returns 0 for
/// empty inputs or when no positive-scoring alignment exists.
pub fn score(
    a: &[AminoAcid],
    b: &[AminoAcid],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
) -> i32 {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let open_ext = gaps.open + gaps.extend;
    let ext = gaps.extend;
    let n = b.len();

    // Row-major sweep: `h[j]` holds H[i-1][j] (the previous row),
    // `f[j]` holds F[i-1][j]; E is carried horizontally in registers.
    let mut h = vec![0i32; n + 1];
    let mut f = vec![NEG; n + 1];
    let mut best = 0;

    for &ai in a {
        let mut h_diag = 0; // H[i-1][j-1]
        let mut h_left = 0; // H[i][j-1]
        let mut e_left = NEG; // E[i][j-1]
        for j in 1..=n {
            let e_ij = (e_left - ext).max(h_left - open_ext);
            let f_ij = (f[j] - ext).max(h[j] - open_ext);
            let diag = h_diag + matrix.score(ai, b[j - 1]);
            let h_ij = 0.max(diag).max(e_ij).max(f_ij);

            h_diag = h[j];
            h[j] = h_ij;
            f[j] = f_ij;
            h_left = h_ij;
            e_left = e_ij;
            if h_ij > best {
                best = h_ij;
            }
        }
    }
    best
}

/// Computes the same score as [`score`] using the SSEARCH34-style
/// computation-avoidance loop (paper Listing 2).
///
/// The inner loop carries `h` and checks data-dependent conditions to
/// skip gap bookkeeping whenever scores are too low for a gap to ever
/// open. The control flow is a faithful port of the FASTA toolkit's
/// `ssearch` inner loop structure; scores are bit-identical to the
/// textbook recurrence.
pub fn score_lazy_f(
    a: &[AminoAcid],
    b: &[AminoAcid],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
) -> i32 {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let open_ext = gaps.open + gaps.extend;
    let ext = gaps.extend;
    let n = b.len();

    // Per-column state, like ssearch's `ss` array of {H, E} structs:
    // col_h[j] = H of the previous row, col_e[j] = live vertical-gap
    // score for this row (0 = dead — a dead gap can never beat the
    // zero floor, so it needs no bookkeeping; that is the whole trick).
    let mut col_h = vec![0i32; n];
    let mut col_e = vec![0i32; n];
    let mut best = 0;

    for &ai in a {
        let mut h_diag = 0; // H[i-1][j-1], carried like ssearch's `p`
        let mut f = 0; // horizontal-gap state for this row, 0 = dead
        for j in 0..n {
            // h = p + *pwaa++  (query-profile add)
            let mut h = h_diag + matrix.score(ai, b[j]);
            h_diag = col_h[j];

            let e = col_e[j];
            if e > 0 {
                // A vertical gap is live in this column.
                if h < e {
                    h = e;
                }
            }
            if f > 0 && h < f {
                h = f;
            }
            if h < 0 {
                h = 0;
            }
            if h > best {
                best = h;
            }
            col_h[j] = h;

            // Keep gap states only while they can still win: the
            // data-dependent short-circuit of the ssearch inner loop.
            let e_next = (e - ext).max(h - open_ext);
            col_e[j] = if e_next > 0 { e_next } else { 0 };
            let f_next = (f - ext).max(h - open_ext);
            f = if f_next > 0 { f_next } else { 0 };
        }
    }
    best
}

/// An explicit local alignment produced by [`align`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalAlignment {
    /// Optimal score.
    pub score: i32,
    /// Start (inclusive) of the aligned region in `a`.
    pub a_start: usize,
    /// End (exclusive) of the aligned region in `a`.
    pub a_end: usize,
    /// Start (inclusive) of the aligned region in `b`.
    pub b_start: usize,
    /// End (exclusive) of the aligned region in `b`.
    pub b_end: usize,
    /// Edit operations from start to end.
    pub ops: Vec<AlignOp>,
}

/// One column of an alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignOp {
    /// Residues aligned (match or substitution).
    Subst,
    /// Gap in `b` (residue of `a` unmatched): vertical move.
    Delete,
    /// Gap in `a` (residue of `b` unmatched): horizontal move.
    Insert,
}

impl LocalAlignment {
    /// Renders the alignment as three lines (a, markers, b), for humans.
    pub fn pretty(&self, a: &[AminoAcid], b: &[AminoAcid]) -> String {
        let mut la = String::new();
        let mut lm = String::new();
        let mut lb = String::new();
        let (mut i, mut j) = (self.a_start, self.b_start);
        for op in &self.ops {
            match op {
                AlignOp::Subst => {
                    la.push(a[i].to_char());
                    lm.push(if a[i] == b[j] { '|' } else { ' ' });
                    lb.push(b[j].to_char());
                    i += 1;
                    j += 1;
                }
                AlignOp::Delete => {
                    la.push(a[i].to_char());
                    lm.push(' ');
                    lb.push('-');
                    i += 1;
                }
                AlignOp::Insert => {
                    la.push('-');
                    lm.push(' ');
                    lb.push(b[j].to_char());
                    j += 1;
                }
            }
        }
        format!("{la}\n{lm}\n{lb}")
    }
}

/// Computes the optimal local alignment with traceback.
///
/// Uses `O(len(a) · len(b))` memory; intended for reporting individual
/// alignments, not for database scans.
pub fn align(
    a: &[AminoAcid],
    b: &[AminoAcid],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
) -> LocalAlignment {
    let m = a.len();
    let n = b.len();
    let open_ext = gaps.open + gaps.extend;
    let ext = gaps.extend;

    let idx = |i: usize, j: usize| i * (n + 1) + j;
    let mut h = vec![0i32; (m + 1) * (n + 1)];
    let mut e = vec![NEG; (m + 1) * (n + 1)];
    let mut f = vec![NEG; (m + 1) * (n + 1)];

    let mut best = 0;
    let mut best_pos = (0usize, 0usize);
    for i in 1..=m {
        for j in 1..=n {
            e[idx(i, j)] = (e[idx(i, j - 1)] - ext).max(h[idx(i, j - 1)] - open_ext);
            f[idx(i, j)] = (f[idx(i - 1, j)] - ext).max(h[idx(i - 1, j)] - open_ext);
            let diag = h[idx(i - 1, j - 1)] + matrix.score(a[i - 1], b[j - 1]);
            let v = 0.max(diag).max(e[idx(i, j)]).max(f[idx(i, j)]);
            h[idx(i, j)] = v;
            if v > best {
                best = v;
                best_pos = (i, j);
            }
        }
    }

    // Traceback from the best cell until H hits 0.
    let mut ops = Vec::new();
    let (mut i, mut j) = best_pos;
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        H,
        E,
        F,
    }
    let mut state = State::H;
    while i > 0 && j > 0 {
        match state {
            State::H => {
                let v = h[idx(i, j)];
                if v == 0 {
                    break;
                }
                if v == h[idx(i - 1, j - 1)] + matrix.score(a[i - 1], b[j - 1]) {
                    ops.push(AlignOp::Subst);
                    i -= 1;
                    j -= 1;
                } else if v == e[idx(i, j)] {
                    state = State::E;
                } else {
                    debug_assert_eq!(v, f[idx(i, j)]);
                    state = State::F;
                }
            }
            State::E => {
                ops.push(AlignOp::Insert);
                if e[idx(i, j)] == h[idx(i, j - 1)] - open_ext {
                    state = State::H;
                }
                j -= 1;
            }
            State::F => {
                ops.push(AlignOp::Delete);
                if f[idx(i, j)] == h[idx(i - 1, j)] - open_ext {
                    state = State::H;
                }
                i -= 1;
            }
        }
    }
    ops.reverse();
    LocalAlignment {
        score: best,
        a_start: i,
        a_end: best_pos.0,
        b_start: j,
        b_end: best_pos.1,
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapa_bioseq::Sequence;

    fn seq(s: &str) -> Vec<AminoAcid> {
        Sequence::from_str("t", s).unwrap().residues().to_vec()
    }

    fn bl62() -> SubstitutionMatrix {
        SubstitutionMatrix::blosum62()
    }

    #[test]
    fn empty_inputs_score_zero() {
        let g = GapPenalties::paper();
        assert_eq!(score(&[], &seq("AC"), &bl62(), g), 0);
        assert_eq!(score(&seq("AC"), &[], &bl62(), g), 0);
        assert_eq!(score_lazy_f(&[], &seq("AC"), &bl62(), g), 0);
    }

    #[test]
    fn self_alignment_is_sum_of_diagonal() {
        let a = seq("HEAGAWGHEE");
        let m = bl62();
        let expected: i32 = a.iter().map(|&x| m.score(x, x)).sum();
        assert_eq!(score(&a, &a, &m, GapPenalties::paper()), expected);
    }

    #[test]
    fn known_alignment_value() {
        // Classic Durbin et al. example pair; with BLOSUM62 10/1 the
        // optimal local alignment of these is AWGHE vs AW-HE.
        let a = seq("HEAGAWGHEE");
        let b = seq("PAWHEAE");
        let s = score(&a, &b, &bl62(), GapPenalties::paper());
        // Optimal local alignment AWGHE / AW-HE:
        // A/A 4 + W/W 11 − gap(1) 11 + H/H 8 + E/E 5 = 17.
        // Pinned to catch regressions (cross-checked by the lazy-F and
        // SIMD equivalence tests and the property suite).
        assert_eq!(s, 17);
    }

    #[test]
    fn lazy_f_matches_textbook_on_examples() {
        let g = GapPenalties::paper();
        let m = bl62();
        let pairs = [
            ("HEAGAWGHEE", "PAWHEAE"),
            ("MKVLAA", "MKVLAA"),
            ("ACDEFGHIKLMNPQRSTVWY", "YWVTSRQPNMLKIHGFEDCA"),
            ("AAAA", "WWWW"),
            ("MKWVTFISLLFLFSSAYS", "MKWVTFISLL"),
        ];
        for (x, y) in pairs {
            let a = seq(x);
            let b = seq(y);
            assert_eq!(
                score(&a, &b, &m, g),
                score_lazy_f(&a, &b, &m, g),
                "{x} vs {y}"
            );
        }
    }

    #[test]
    fn score_is_symmetric() {
        let g = GapPenalties::paper();
        let m = bl62();
        let a = seq("MKVLAAGWWY");
        let b = seq("KVLGWW");
        assert_eq!(score(&a, &b, &m, g), score(&b, &a, &m, g));
    }

    #[test]
    fn harsher_gaps_never_increase_score() {
        let m = bl62();
        let a = seq("MKVLAAGWWYHE");
        let b = seq("MKVGWWYHE");
        let s_easy = score(&a, &b, &m, GapPenalties::new(5, 1));
        let s_hard = score(&a, &b, &m, GapPenalties::new(20, 5));
        assert!(s_hard <= s_easy);
    }

    #[test]
    fn align_traceback_consistent_with_score() {
        let m = bl62();
        let g = GapPenalties::paper();
        let a = seq("HEAGAWGHEE");
        let b = seq("PAWHEAE");
        let al = align(&a, &b, &m, g);
        assert_eq!(al.score, score(&a, &b, &m, g));
        // Replay the ops and recompute the score.
        let (mut i, mut j) = (al.a_start, al.b_start);
        let mut replay = 0;
        let mut gap_open: Option<AlignOp> = None;
        for &op in &al.ops {
            match op {
                AlignOp::Subst => {
                    replay += m.score(a[i], b[j]);
                    i += 1;
                    j += 1;
                    gap_open = None;
                }
                AlignOp::Delete => {
                    replay -= if gap_open == Some(AlignOp::Delete) {
                        g.extend
                    } else {
                        g.open + g.extend
                    };
                    i += 1;
                    gap_open = Some(AlignOp::Delete);
                }
                AlignOp::Insert => {
                    replay -= if gap_open == Some(AlignOp::Insert) {
                        g.extend
                    } else {
                        g.open + g.extend
                    };
                    j += 1;
                    gap_open = Some(AlignOp::Insert);
                }
            }
        }
        assert_eq!((i, j), (al.a_end, al.b_end));
        assert_eq!(replay, al.score);
    }

    #[test]
    fn pretty_renders_three_lines() {
        let m = bl62();
        let g = GapPenalties::paper();
        let a = seq("HEAGAWGHEE");
        let b = seq("PAWHEAE");
        let al = align(&a, &b, &m, g);
        let text = al.pretty(&a, &b);
        assert_eq!(text.lines().count(), 3);
    }
}
