//! Table I: selected workload description.

use crate::context::Context;
use crate::format::{heading, Table};
use sapa_workloads::Workload;

/// Renders Table I.
pub fn run(_ctx: &mut Context) -> String {
    let mut t = Table::new(&["Application", "Description", "Input parameters"]);
    for w in Workload::ALL {
        t.row(&[w.label(), w.description(), w.input_parameters()]);
    }
    format!(
        "{}{}",
        heading("Table I — selected workload description"),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn lists_all_five_workloads() {
        let out = run(&mut Context::new(Scale::Tiny));
        for w in Workload::ALL {
            assert!(out.contains(w.label()), "{w} missing");
        }
        assert!(out.contains("blastp"));
    }
}
