//! Figure 1: instruction breakdown per workload.

use crate::context::Context;
use crate::format::{heading, pct, Table};
use sapa_workloads::Workload;

/// Renders Figure 1's stacked-bar data as one row per class.
pub fn run(ctx: &mut Context) -> String {
    let mut out = heading("Figure 1 — instruction breakdown");
    for w in Workload::ALL {
        let stats = ctx.trace(w).stats();
        let mut t = Table::new(&["class", "count", "fraction"]);
        for (class, count, frac) in stats.figure1_rows() {
            t.row_owned(vec![
                class.label().to_string(),
                count.to_string(),
                pct(frac),
            ]);
        }
        out.push_str(&format!(
            "\n{} (total {}):\n{}",
            w.label(),
            stats.total(),
            t.render()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn covers_all_classes_and_workloads() {
        let out = run(&mut Context::new(Scale::Tiny));
        for label in ["ialu", "ctrl", "vperm", "vsimple", "iload", "istore"] {
            assert!(out.contains(label), "{label} missing");
        }
        assert!(out.contains("SW_vmx256"));
    }
}
