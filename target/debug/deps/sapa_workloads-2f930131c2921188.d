/root/repo/target/debug/deps/sapa_workloads-2f930131c2921188.d: crates/workloads/src/lib.rs crates/workloads/src/blast.rs crates/workloads/src/blastn.rs crates/workloads/src/fasta.rs crates/workloads/src/layout.rs crates/workloads/src/registry.rs crates/workloads/src/ssearch.rs crates/workloads/src/sw_simd.rs Cargo.toml

/root/repo/target/debug/deps/libsapa_workloads-2f930131c2921188.rmeta: crates/workloads/src/lib.rs crates/workloads/src/blast.rs crates/workloads/src/blastn.rs crates/workloads/src/fasta.rs crates/workloads/src/layout.rs crates/workloads/src/registry.rs crates/workloads/src/ssearch.rs crates/workloads/src/sw_simd.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/blast.rs:
crates/workloads/src/blastn.rs:
crates/workloads/src/fasta.rs:
crates/workloads/src/layout.rs:
crates/workloads/src/registry.rs:
crates/workloads/src/ssearch.rs:
crates/workloads/src/sw_simd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
