/root/repo/target/debug/deps/sapa_isa-5438d3c00442453e.d: crates/isa/src/lib.rs crates/isa/src/inst.rs crates/isa/src/mem.rs crates/isa/src/reg.rs crates/isa/src/stats.rs crates/isa/src/trace.rs crates/isa/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libsapa_isa-5438d3c00442453e.rmeta: crates/isa/src/lib.rs crates/isa/src/inst.rs crates/isa/src/mem.rs crates/isa/src/reg.rs crates/isa/src/stats.rs crates/isa/src/trace.rs crates/isa/src/validate.rs Cargo.toml

crates/isa/src/lib.rs:
crates/isa/src/inst.rs:
crates/isa/src/mem.rs:
crates/isa/src/reg.rs:
crates/isa/src/stats.rs:
crates/isa/src/trace.rs:
crates/isa/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
