//! A blastn-like nucleotide search over 2-bit packed databases.
//!
//! The paper profiles protein BLAST, but its Listing 1 shows the
//! *nucleotide* word finder (`BlastNtWordFinder`): the database is
//! stored four bases per byte and the extension code unpacks bases
//! with `READDB_UNPACK_BASE_{1..4}` through a cascade of
//! `if-then-else` — the pointer arithmetic + branchy pattern the paper
//! blames for BLAST's superscalar behaviour. This module implements
//! that pipeline: exact-word seeding over a packed subject, byte-wise
//! cascaded left extension exactly in the listing's shape, and X-drop
//! ungapped extension.
//!
//! Scoring follows blastn defaults: reward `+1`, penalty `-3`.

use sapa_bioseq::dna::{unpack_base, DnaSequence, Nucleotide, PackedDna};

use crate::result::{Hit, SearchResults, TopK};

/// Tunable parameters; defaults follow NCBI blastn (word 11, +1/-3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlastnParams {
    /// Seed word length (blastn default 11).
    pub word_len: usize,
    /// Score for a matching base.
    pub reward: i32,
    /// Score for a mismatching base (negative).
    pub penalty: i32,
    /// X-drop for the ungapped extension.
    pub xdrop: i32,
    /// Minimum reported score.
    pub min_report_score: i32,
}

impl Default for BlastnParams {
    fn default() -> Self {
        BlastnParams {
            word_len: 11,
            reward: 1,
            penalty: -3,
            xdrop: 20,
            min_report_score: 16,
        }
    }
}

/// The query word table: a hash map from packed `word_len`-mers to the
/// query offsets where they occur (exact words only — blastn does not
/// use neighborhoods).
#[derive(Debug, Clone)]
pub struct NtWordIndex {
    words: std::collections::HashMap<u32, Vec<u32>>,
    word_len: usize,
    query: Vec<Nucleotide>,
}

impl NtWordIndex {
    /// Builds the table for `query`.
    ///
    /// # Panics
    ///
    /// Panics if `word_len` is 0 or greater than 16 (words are packed
    /// into a `u32`).
    pub fn build(query: &DnaSequence, word_len: usize) -> Self {
        assert!((1..=16).contains(&word_len), "word length must be 1..=16");
        let mut words: std::collections::HashMap<u32, Vec<u32>> = std::collections::HashMap::new();
        let bases = query.bases();
        if bases.len() >= word_len {
            let mask = word_mask(word_len);
            let mut w = 0u32;
            for (i, b) in bases.iter().enumerate() {
                w = ((w << 2) | b.code() as u32) & mask;
                if i + 1 >= word_len {
                    words.entry(w).or_default().push((i + 1 - word_len) as u32);
                }
            }
        }
        NtWordIndex {
            words,
            word_len,
            query: bases.to_vec(),
        }
    }

    /// Query offsets at which the packed word occurs.
    pub fn lookup(&self, word: u32) -> &[u32] {
        self.words.get(&word).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct words in the query.
    pub fn distinct_words(&self) -> usize {
        self.words.len()
    }

    /// The indexed query.
    pub fn query(&self) -> &[Nucleotide] {
        &self.query
    }

    /// Word length of the table.
    pub fn word_len(&self) -> usize {
        self.word_len
    }
}

#[inline]
fn word_mask(word_len: usize) -> u32 {
    if word_len >= 16 {
        u32::MAX
    } else {
        (1u32 << (2 * word_len)) - 1
    }
}

/// The paper's Listing 1, as a function: how many of the (up to 4)
/// bases in the packed byte `p` match the query bases *ending* at
/// `q_end` (walking backwards), stopping at the query start. Returns
/// 0..=4 — the listing's `left` variable.
pub fn match_left_in_byte(p: u8, query: &[Nucleotide], q_end: usize) -> usize {
    // Walking leftwards, the nearest base is the byte's least
    // significant pair; the cascade then steps outward — the
    // `READDB_UNPACK_BASE_k(p) != *--q || q < query0` chain of the
    // listing.
    if q_end == 0 || unpack_base(p, 1) != query[q_end - 1].code() {
        0
    } else if q_end == 1 || unpack_base(p, 2) != query[q_end - 2].code() {
        1
    } else if q_end == 2 || unpack_base(p, 3) != query[q_end - 3].code() {
        2
    } else if q_end == 3 || unpack_base(p, 4) != query[q_end - 4].code() {
        3
    } else {
        4
    }
}

/// Ungapped X-drop extension of a word hit at query offset `qi`,
/// subject offset `sj` (word starts), over the packed subject.
pub fn ungapped_extend(
    query: &[Nucleotide],
    subject: &PackedDna,
    params: &BlastnParams,
    qi: usize,
    sj: usize,
) -> i32 {
    let w = params.word_len;
    let mut best = (w as i32) * params.reward;

    // Extend right, unpacking as we go.
    let mut score = best;
    let (mut i, mut j) = (qi + w, sj + w);
    while i < query.len() && j < subject.len() {
        score += if subject.get(j) == query[i] {
            params.reward
        } else {
            params.penalty
        };
        if score > best {
            best = score;
        } else if best - score > params.xdrop {
            break;
        }
        i += 1;
        j += 1;
    }

    // Extend left, one packed byte at a time (the Listing 1 cascade),
    // only while whole-byte matches continue; a partial byte ends the
    // exact-match run, after which the X-drop loop takes over.
    let mut score = best;
    let (mut i, mut j) = (qi, sj);
    while i > 0 && j > 0 {
        if j % 4 == 0 && j >= 4 && i >= 4 {
            // Byte-aligned: use the cascaded unpack comparison.
            let byte = subject.bytes()[j / 4 - 1];
            let left = match_left_in_byte(byte, query, i);
            if left == 4 {
                score += 4 * params.reward;
                i -= 4;
                j -= 4;
                if score > best {
                    best = score;
                }
                continue;
            }
        }
        i -= 1;
        j -= 1;
        score += if subject.get(j) == query[i] {
            params.reward
        } else {
            params.penalty
        };
        if score > best {
            best = score;
        } else if best - score > params.xdrop {
            break;
        }
    }
    best
}

/// Searches packed subjects for the query; returns the ranked hit list.
pub fn search<'a, I>(
    index: &NtWordIndex,
    db: I,
    params: &BlastnParams,
    keep: usize,
) -> SearchResults
where
    I: IntoIterator<Item = &'a PackedDna>,
{
    let query = index.query();
    let w = index.word_len();
    let mask = word_mask(w);
    let mut results = TopK::new(keep.max(1));

    for (seq_index, subject) in db.into_iter().enumerate() {
        if subject.len() < w || query.len() < w {
            continue;
        }
        let m = query.len();
        let ndiag = m + subject.len();
        let mut ext_end = vec![i32::MIN / 2; ndiag];
        let mut best_score = 0i32;

        let mut word = 0u32;
        for j in 0..subject.len() {
            word = ((word << 2) | subject.get(j).code() as u32) & mask;
            if j + 1 < w {
                continue;
            }
            let start = j + 1 - w;
            for &qi in index.lookup(word) {
                let i = qi as usize;
                let diag = start + m - i;
                if (start as i32) <= ext_end[diag] {
                    continue;
                }
                let score = ungapped_extend(query, subject, params, i, start);
                ext_end[diag] = (start + w) as i32;
                if score > best_score {
                    best_score = score;
                }
            }
        }
        if best_score >= params.min_report_score {
            results.push(Hit {
                seq_index,
                score: best_score,
            });
        }
    }
    results.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapa_bioseq::dna::random_dna;

    fn dna(s: &str) -> DnaSequence {
        DnaSequence::from_str("t", s).unwrap()
    }

    #[test]
    fn index_finds_exact_words() {
        let q = dna("ACGTACGTACGTA");
        let idx = NtWordIndex::build(&q, 11);
        assert!(idx.distinct_words() >= 2);
        // Word at offset 0 must be present under its packed code.
        let mut w = 0u32;
        for b in &q.bases()[..11] {
            w = (w << 2) | b.code() as u32;
        }
        assert!(idx.lookup(w).contains(&0));
    }

    #[test]
    fn match_left_cascade() {
        // query ...ACGT, byte = ACGT => all 4 match.
        let q = dna("AAACGT");
        let byte = dna("ACGT").pack().bytes()[0];
        assert_eq!(match_left_in_byte(byte, q.bases(), 6), 4);
        // Change the last query base: the base-4 (first) comparison in
        // the cascade sees the byte's last base mismatch.
        let q2 = dna("AAACGA");
        assert_eq!(match_left_in_byte(byte, q2.bases(), 6), 0);
        // At the very start of the query nothing can match.
        assert_eq!(match_left_in_byte(byte, q.bases(), 0), 0);
    }

    #[test]
    fn extension_recovers_planted_match() {
        // Subject = flank + query + flank; the seed sits mid-query.
        let q = random_dna("q", 64, 5);
        let flank_l = random_dna("fl", 37, 6); // unaligned offset
        let flank_r = random_dna("fr", 23, 7);
        let mut bases = flank_l.bases().to_vec();
        bases.extend_from_slice(q.bases());
        bases.extend_from_slice(flank_r.bases());
        let subject = DnaSequence::new("s", bases).pack();

        let params = BlastnParams::default();
        // Seed at query offset 20 (subject offset 37 + 20).
        let score = ungapped_extend(q.bases(), &subject, &params, 20, 57);
        // The whole 64-base identity should be recovered (random flanks
        // may extend it slightly or clip via X-drop).
        assert!(score >= 60, "score {score}");
    }

    #[test]
    fn search_ranks_the_true_source_first() {
        let q = random_dna("q", 80, 11);
        let mut with_hit = random_dna("s1", 300, 12).bases().to_vec();
        with_hit[100..180].copy_from_slice(q.bases());
        let subjects = [
            random_dna("s0", 300, 13).pack(),
            DnaSequence::new("s1", with_hit).pack(),
            random_dna("s2", 300, 14).pack(),
        ];
        let idx = NtWordIndex::build(&q, 11);
        let res = search(&idx, subjects.iter(), &BlastnParams::default(), 10);
        let hits = res.hits();
        assert!(!hits.is_empty(), "planted match not found");
        assert_eq!(hits[0].seq_index, 1);
        assert!(hits[0].score >= 70, "score {}", hits[0].score);
    }

    #[test]
    fn random_subjects_rarely_score() {
        let q = random_dna("q", 64, 21);
        let idx = NtWordIndex::build(&q, 11);
        let subjects: Vec<PackedDna> = (0..10)
            .map(|k| random_dna("s", 400, 100 + k).pack())
            .collect();
        let res = search(&idx, subjects.iter(), &BlastnParams::default(), 10);
        // An 11-mer exact match in 400 random bases has probability
        // ≈ 400·64/4^11 ≈ 0.6%; ten subjects should essentially never
        // all hit.
        assert!(res.hits().len() <= 2, "{} spurious hits", res.hits().len());
    }

    #[test]
    fn short_inputs_are_safe() {
        let q = dna("ACGT");
        let idx = NtWordIndex::build(&q, 11);
        let subject = dna("ACG").pack();
        let res = search(&idx, [&subject], &BlastnParams::default(), 5);
        assert!(res.hits().is_empty());
    }
}
