//! Table II: the query set.

use crate::context::Context;
use crate::format::{heading, Table};
use sapa_bioseq::queries::PAPER_QUERIES;

/// Renders Table II.
pub fn run(_ctx: &mut Context) -> String {
    let mut t = Table::new(&["Protein family", "Accession (ID)", "Length (symbols)"]);
    for q in &PAPER_QUERIES {
        t.row_owned(vec![
            q.family.to_string(),
            q.accession.to_string(),
            q.length.to_string(),
        ]);
    }
    format!(
        "{}{}",
        heading("Table II — query sequences used in the evaluations"),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn table_matches_paper_rows() {
        let out = run(&mut Context::new(Scale::Tiny));
        assert!(out.contains("Globin"));
        assert!(out.contains("P14942"));
        assert!(out.contains("567"));
    }
}
