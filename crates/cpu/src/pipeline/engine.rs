//! The cycle-driven engine: retire → issue → dispatch → fetch over the
//! staged backend structures (RAT, reservation stations, ROB, LSQ).
//!
//! One engine runs both issue models. The cycle skeleton, frontend,
//! rename accounting and issue scan are shared; the
//! [`IssueModel`] selector changes only how loads order against
//! stores:
//!
//! * **Scoreboard** (the original logic, kept as the comparison
//!   oracle): a load takes a dispatch-time dependence on the youngest
//!   in-flight store to its granule — conservative, never replays.
//! * **OutOfOrder** (default): loads bypass older stores with
//!   unresolved or non-conflicting addresses; a store that resolves to
//!   a granule a younger load already read squashes that load back to
//!   its reservation station with a dependence on the store
//!   (see [`super::lsq`]).

use std::collections::VecDeque;

use sapa_isa::inst::Inst;

use crate::branch::{NfaTable, Predictor};
use crate::cache::{MemoryHierarchy, ServedBy};
use crate::config::{IssueModel, SimConfig, UnitClass};
use crate::stats::{OccupancyHistogram, SimReport, StructStalls};
use crate::trauma::{Trauma, TraumaCounts};

use super::lsq::Lsq;
use super::rename::Rat;
use super::rob::{Rob, RobEntry, State};
use super::rs::Stations;
use super::{diq_trauma, ful_trauma, rg_trauma_for, unit_for, DecodeBuf, InstSource};

const FETCH_FREE: u64 = 0;

pub(super) struct Engine<'a, S> {
    cfg: &'a SimConfig,
    model: IssueModel,
    src: S,
    n_insts: usize,
    cycle: u64,

    // Block-buffered decode window over the source: instructions
    // `block_start .. block_start + block_len` sit decoded in `block`.
    block: &'a mut [Inst],
    block_start: usize,
    block_len: usize,

    // Frontend.
    next_fetch: usize,
    fetch_stall_until: u64,
    fetch_stall_reason: Trauma,
    /// Sequence number of a fetched mispredicted branch that has not
    /// yet scheduled its recovery; fetch is blocked while this is set.
    mispredict_blocker: Option<u64>,
    ibuffer: VecDeque<(Inst, u64)>, // (decoded instruction, fetch cycle)
    cur_fetch_line: u64,
    pending_branches: u32,
    branch_resolutions: Vec<u64>,

    // Backend structures.
    rob: Rob,
    rat: Rat,
    stations: Stations,
    lsq: Lsq,
    mshr: Vec<u64>, // completion cycles of outstanding DL1 misses
    hierarchy: MemoryHierarchy,
    predictor: Predictor,
    nfa: NfaTable,

    // Dispatch-stall bookkeeping for trauma attribution.
    dispatch_stall: Option<Trauma>,

    // Statistics.
    traumas: TraumaCounts,
    structures: StructStalls,
    store_forwards: u64,
    retired: u64,
    unit_issued: [u64; UnitClass::COUNT],
    queue_occ: Vec<OccupancyHistogram>,
    inflight_occ: OccupancyHistogram,
    retireq_occ: OccupancyHistogram,
    lq_occ: OccupancyHistogram,
    sq_occ: OccupancyHistogram,
}

impl<'a, S: InstSource> Engine<'a, S> {
    pub(super) fn new(cfg: &'a SimConfig, n_insts: usize, src: S, buf: &'a mut DecodeBuf) -> Self {
        let model = cfg.cpu.issue_model;
        // The scoreboard model predates the RS split and sizes its
        // stations from the issue queues; the staged model has its own
        // knob.
        let station_caps = match model {
            IssueModel::Scoreboard => cfg.cpu.issue_queue,
            IssueModel::OutOfOrder => cfg.cpu.rs_entries,
        };
        let queue_occ = UnitClass::ALL
            .iter()
            .map(|&c| OccupancyHistogram::new(station_caps[c.index()] as usize))
            .collect();
        Engine {
            cfg,
            model,
            src,
            n_insts,
            cycle: 0,
            block: &mut buf.buf,
            block_start: 0,
            block_len: 0,
            next_fetch: 0,
            fetch_stall_until: FETCH_FREE,
            fetch_stall_reason: Trauma::Other,
            mispredict_blocker: None,
            ibuffer: VecDeque::with_capacity(cfg.cpu.ibuffer as usize),
            cur_fetch_line: u64::MAX,
            pending_branches: 0,
            branch_resolutions: Vec::with_capacity(cfg.branch.max_pred_branches as usize),
            rob: Rob::new(cfg.cpu.retire_queue as usize),
            rat: Rat::new(&cfg.cpu),
            stations: Stations::new(station_caps),
            lsq: Lsq::new(cfg.cpu.lsq_loads as usize, cfg.cpu.lsq_stores as usize),
            mshr: Vec::with_capacity(cfg.cpu.max_outstanding_misses as usize),
            hierarchy: MemoryHierarchy::new(&cfg.mem),
            predictor: Predictor::from_config(&cfg.branch),
            nfa: NfaTable::new(cfg.branch.nfa_size, cfg.branch.nfa_assoc),
            dispatch_stall: None,
            traumas: TraumaCounts::new(),
            structures: StructStalls::new(),
            store_forwards: 0,
            retired: 0,
            unit_issued: [0; UnitClass::COUNT],
            queue_occ,
            inflight_occ: OccupancyHistogram::new(cfg.cpu.inflight as usize),
            retireq_occ: OccupancyHistogram::new(cfg.cpu.retire_queue as usize),
            lq_occ: OccupancyHistogram::new(cfg.cpu.lsq_loads as usize),
            sq_occ: OccupancyHistogram::new(cfg.cpu.lsq_stores as usize),
        }
    }

    pub(super) fn run(mut self) -> SimReport {
        let watchdog = self.n_insts as u64 * 1000 + 1_000_000;
        while self.next_fetch < self.n_insts || !self.ibuffer.is_empty() || !self.rob.is_empty() {
            self.cycle += 1;
            assert!(
                self.cycle < watchdog,
                "simulator watchdog tripped at cycle {} ({} of {} instructions retired): \
                 scheduling deadlock",
                self.cycle,
                self.retired,
                self.n_insts
            );

            self.expire_resolutions();
            let retired = self.retire();
            self.issue();
            self.dispatch_stall = None;
            self.dispatch();
            // Per-structure stall attribution: a dispatch stage blocked
            // by a full or exhausted backend structure charges that
            // structure, independent of which trauma the Moreno
            // accounting below blames the cycle on.
            if let Some(t) = self.dispatch_stall {
                self.structures.charge_dispatch(t);
            }
            self.fetch();
            self.record_occupancy();
            // Moreno-style accounting: any cycle that retires fewer
            // instructions than the machine width is charged to the
            // stall reason of the oldest non-retiring operation.
            if retired < self.cfg.cpu.retire_width {
                let blame = self.blame();
                self.traumas.charge(blame, 1);
                if blame == Trauma::MmStqc {
                    self.structures.replay_wait_cycles += 1;
                }
            }
        }

        // Issue slots offered per class: every simulated cycle each
        // unit of the class could have started one instruction.
        let mut unit_slots = [0u64; UnitClass::COUNT];
        for &class in &UnitClass::ALL {
            unit_slots[class.index()] = self.cycle * self.cfg.cpu.units[class.index()] as u64;
        }

        SimReport {
            cycles: self.cycle,
            instructions: self.retired,
            traumas: self.traumas,
            structures: self.structures,
            store_forwards: self.store_forwards,
            unit_issued: self.unit_issued,
            unit_slots,
            dl1: self.hierarchy.dl1_stats(),
            il1: self.hierarchy.il1_stats(),
            l2: self.hierarchy.l2_stats(),
            dtlb: self.hierarchy.dtlb_stats(),
            itlb: self.hierarchy.itlb_stats(),
            bp_predictions: self.predictor.predictions(),
            bp_mispredictions: self.predictor.mispredictions(),
            queue_occupancy: self.queue_occ,
            inflight_occupancy: self.inflight_occ,
            retireq_occupancy: self.retireq_occ,
            lq_occupancy: self.lq_occ,
            sq_occupancy: self.sq_occ,
        }
    }

    /// Decoded instruction `idx` out of the block buffer, refilling from
    /// the source when fetch steps past the buffered block.
    ///
    /// Fetch is sequential — `idx` is either the last index served (a
    /// stalled fetch retrying) or the one after it — so the offset into
    /// the current block is always in `0..=block_len`, and a refill is
    /// needed exactly when it equals `block_len`. The caller's
    /// `next_fetch < n_insts` guard guarantees the source still has
    /// instructions, so a refill always produces a non-empty block.
    #[inline]
    fn inst_at(&mut self, idx: usize) -> Inst {
        let off = idx - self.block_start;
        if off == self.block_len {
            self.block_start = idx;
            self.block_len = self.src.fill_block(self.block);
            debug_assert!(self.block_len > 0, "source dry at index {idx}");
            return self.block[0];
        }
        self.block[off]
    }

    fn expire_resolutions(&mut self) {
        let now = self.cycle;
        let before = self.branch_resolutions.len();
        self.branch_resolutions.retain(|&t| t > now);
        self.pending_branches -= (before - self.branch_resolutions.len()) as u32;
        self.mshr.retain(|&t| t > now);
    }

    fn retire(&mut self) -> u32 {
        let mut n = 0;
        while n < self.cfg.cpu.retire_width {
            let Some(head) = self.rob.front() else { break };
            let complete = match head.state {
                State::Done => true,
                State::Executing => head.done_at <= self.cycle,
                State::Waiting => false,
            };
            if !complete {
                break;
            }
            let (seq, entry) = self.rob.pop_front().expect("head exists");
            if entry.inst.op.is_store() {
                self.lsq.retire_store(seq);
            } else if entry.inst.op.is_load() && self.model == IssueModel::OutOfOrder {
                self.lsq.retire_load(seq);
            }
            self.rat.release(&entry.inst);
            self.retired += 1;
            n += 1;
        }
        n
    }

    fn issue(&mut self) {
        for &class in &UnitClass::ALL {
            let units = self.cfg.cpu.units[class.index()];
            let mut issued = 0;
            let mut examined = 0;
            let mut qi = 0;
            // Limited-window oldest-first select, like real issue logic.
            while issued < units && qi < self.stations.len(class) && examined < 24 {
                examined += 1;
                let seq = self.stations.get(class, qi);
                if !self.try_issue(seq) {
                    qi += 1;
                    continue;
                }
                self.stations.remove(class, qi);
                issued += 1;
            }
        }
    }

    /// Attempts to issue the instruction `seq`; returns `true` on
    /// success.
    fn try_issue(&mut self, seq: u64) -> bool {
        let now = self.cycle;
        let Some(e) = self.rob.entry(seq) else {
            return false;
        };
        if e.state != State::Waiting || e.dispatch_cycle >= now {
            return false;
        }
        for k in 0..e.ndeps as usize {
            if !self.rob.dep_ready(e.deps[k], now) {
                return false;
            }
        }
        let inst = e.inst;
        let class = e.queue;
        let probed = e.probed;
        let prior_served = e.served;
        let prior_tlb = e.tlb_miss;
        let base_lat = self.cfg.cpu.unit_latency[class.index()];

        let (done_at, served, tlb_miss, mshr_used) = if inst.op.is_mem() {
            let addr = inst.ea as u64;
            let granule = inst.ea >> 4;
            let forward_from =
                if self.model == IssueModel::OutOfOrder && inst.op.is_load() && !probed {
                    self.lsq.forward_source(seq, granule)
                } else {
                    None
                };
            // The store-forwarding network runs at the L1 pipeline's
            // load-to-use latency: forwarded data is no faster than a
            // hit, it just never waits on the miss path.
            let fwd_lat = self.cfg.mem.dl1.latency.max(base_lat) as u64;
            if probed {
                // A replayed load re-issuing: its cache access already
                // happened on the first issue, and the data now comes
                // from the conflicting store's queue entry — a store
                // forward delivered the hard way.
                self.store_forwards += 1;
                (now + fwd_lat, prior_served, prior_tlb, false)
            } else if forward_from.is_some() {
                // Store-to-load forwarding: data arrives from the store
                // queue, bypassing the miss path. The cache is still
                // accessed so DL1 statistics stay a pure function of
                // the trace.
                let access = self.hierarchy.data_access(addr);
                self.store_forwards += 1;
                (now + fwd_lat, Some(ServedBy::L1), access.tlb_miss, false)
            } else {
                // Memory operation: consult the hierarchy.
                let will_hit = self.hierarchy.probe_dl1(addr);
                if !will_hit
                    && inst.op.is_load()
                    && self.mshr.len() >= self.cfg.cpu.max_outstanding_misses as usize
                {
                    // No MSHR for a new miss: mark and retry later.
                    if let Some(em) = self.rob.entry_mut(seq) {
                        em.mshr_blocked = true;
                    }
                    return false;
                }
                let access = self.hierarchy.data_access(addr);
                let mut lat = access.latency;
                if inst.width() > 16 {
                    lat += self.cfg.cpu.wide_load_extra_latency;
                }
                if inst.op.is_store() {
                    // Stores drain through the store queue off the
                    // critical path; completion is immediate for
                    // dependents.
                    (
                        now + base_lat as u64,
                        Some(access.served_by),
                        access.tlb_miss,
                        false,
                    )
                } else {
                    (
                        now + lat.max(base_lat) as u64,
                        Some(access.served_by),
                        access.tlb_miss,
                        access.served_by != ServedBy::L1,
                    )
                }
            }
        } else {
            (now + base_lat as u64, None, false, false)
        };

        if mshr_used {
            self.mshr.push(done_at);
        }

        // Replays re-occupy an issue slot but are not new work: each
        // retired instruction is counted on exactly one unit, once.
        if !probed {
            self.unit_issued[class.index()] += 1;
        }
        let is_cond = {
            let e = self.rob.entry_mut(seq).expect("entry exists");
            e.state = State::Executing;
            e.done_at = done_at;
            e.served = served;
            e.tlb_miss = tlb_miss;
            e.mshr_blocked = false;
            e.probed = true;
            e.is_cond_branch
        };

        if self.model == IssueModel::OutOfOrder && inst.op.is_mem() {
            let granule = inst.ea >> 4;
            if inst.op.is_load() {
                self.lsq.set_load_issued(seq, true);
            } else if inst.op.is_store() {
                // The store's address just resolved: younger loads that
                // issued past it to the same granule mis-speculated.
                for lseq in self.lsq.resolve_store(seq, granule) {
                    self.replay_load(lseq, seq);
                }
            }
        }

        if is_cond {
            self.branch_resolutions.push(done_at);
            // A mispredicted branch schedules the fetch restart.
            let mispredicted = self.rob.entry(seq).map(|e| e.mispredicted).unwrap_or(false);
            if mispredicted && self.mispredict_blocker == Some(seq) {
                self.mispredict_blocker = None;
                self.fetch_stall_until = done_at + self.cfg.branch.mispredict_recovery as u64;
                self.fetch_stall_reason = Trauma::IfPred;
            }
        }
        true
    }

    /// Squashes a mis-speculated load back to its reservation station
    /// with a single dependence on the store it conflicted with. Its
    /// original register dependences were satisfied when it first
    /// issued, so only the store ordering remains. Forward progress is
    /// guaranteed: the store is older, already executing, and completes
    /// at a fixed cycle, after which the load re-issues and forwards.
    ///
    /// Consumers that already issued with the load's speculative value
    /// are *not* re-simulated — the model charges the replayed load's
    /// latency but not a full dependent-tree squash, matching
    /// Turandot's low-cost recovery approximation.
    fn replay_load(&mut self, lseq: u64, store_seq: u64) {
        let Some(e) = self.rob.entry_mut(lseq) else {
            return;
        };
        debug_assert!(e.probed, "replaying a load that never issued");
        e.state = State::Waiting;
        e.done_at = 0;
        e.deps[0] = store_seq;
        e.ndeps = 1;
        e.replayed = true;
        e.mshr_blocked = false;
        self.lsq.set_load_issued(lseq, false);
        self.stations.insert_sorted(UnitClass::Mem, lseq);
        self.structures.replays += 1;
    }

    fn dispatch(&mut self) {
        let mut n = 0;
        while n < self.cfg.cpu.dispatch_width {
            let Some(&(inst, fetch_cycle)) = self.ibuffer.front() else {
                break;
            };
            // Frontend pipeline depth: decode/rename take a few cycles.
            if fetch_cycle + self.cfg.cpu.frontend_depth as u64 > self.cycle {
                self.dispatch_stall = Some(Trauma::Decode);
                break;
            }
            if self.rob.len() >= self.cfg.cpu.retire_queue as usize {
                self.dispatch_stall = Some(Trauma::MmRoqf);
                break;
            }
            let class = unit_for(inst.op);
            if self.stations.is_full(class) {
                self.dispatch_stall = Some(diq_trauma(class));
                break;
            }
            if self.model == IssueModel::OutOfOrder {
                if inst.op.is_load() && self.lsq.loads_full() {
                    self.dispatch_stall = Some(Trauma::MmDcqf);
                    break;
                }
                if inst.op.is_store() && self.lsq.stores_full() {
                    self.dispatch_stall = Some(Trauma::MmStqf);
                    break;
                }
            }
            if !self.rat.can_rename(&inst) {
                self.dispatch_stall = Some(Trauma::Rename);
                break;
            }

            // Record dependencies on in-flight producers.
            let mut deps = [0u64; 4];
            let mut ndeps = self.rat.collect_deps(&inst, self.rob.head_seq(), &mut deps);
            let seq = self.rob.next_seq();
            let granule = inst.ea >> 4;
            match self.model {
                IssueModel::Scoreboard => {
                    // Conservative disambiguation decided at dispatch: a
                    // load after an in-flight store to the same granule
                    // waits for that store (store-queue forwarding, no
                    // speculative bypass).
                    if inst.op.is_load() {
                        if let Some(sseq) = self.lsq.youngest_store_to(granule) {
                            deps[ndeps as usize] = sseq;
                            ndeps += 1;
                            self.store_forwards += 1;
                        }
                    } else if inst.op.is_store() {
                        self.lsq.push_store(seq, granule, true);
                    }
                }
                IssueModel::OutOfOrder => {
                    // Loads carry no store ordering at dispatch — they
                    // bypass speculatively and the LSQ catches
                    // conflicts at store-resolve time.
                    if inst.op.is_load() {
                        self.lsq.push_load(seq, granule);
                    } else if inst.op.is_store() {
                        self.lsq.push_store(seq, granule, false);
                    }
                }
            }
            self.rat.rename(&inst, seq);

            let is_cond = inst.is_cond_branch();
            let mispredicted = is_cond && {
                // Prediction already happened at fetch; the outcome was
                // recorded in the ibuffer companion entry via the
                // blocker mechanism. Recompute from the blocker seq.
                self.mispredict_blocker == Some(seq)
            };

            self.rob.push(RobEntry {
                inst,
                state: State::Waiting,
                queue: class,
                done_at: 0,
                dispatch_cycle: self.cycle,
                deps,
                ndeps,
                served: None,
                tlb_miss: false,
                mispredicted,
                is_cond_branch: is_cond,
                mshr_blocked: false,
                probed: false,
                replayed: false,
            });
            self.stations.push(class, seq);
            self.ibuffer.pop_front();
            n += 1;
        }
    }

    fn fetch(&mut self) {
        if self.cycle < self.fetch_stall_until {
            return;
        }
        // While a mispredicted branch is unresolved, the frontend only
        // holds correct-path instructions that were already buffered;
        // no new fetch happens.
        if self.mispredict_blocker.is_some() {
            return;
        }
        // The last disruption reason stays sticky so that refill
        // (decode-depth) cycles after a redirect are charged to the
        // redirect's cause, as the paper's accounting does.

        let line_mask = !(self.cfg.mem.il1.line as u64 - 1);
        let mut n = 0;
        while n < self.cfg.cpu.fetch_width {
            if self.next_fetch >= self.n_insts {
                break;
            }
            if self.ibuffer.len() >= self.cfg.cpu.ibuffer as usize
                || self.rob.len() + self.ibuffer.len() >= self.cfg.cpu.inflight as usize
            {
                // Instruction buffer full, or the machine-wide in-flight
                // limit reached: fetch must wait for retirement.
                self.fetch_stall_reason = Trauma::IfFull;
                break;
            }
            if self.pending_branches >= self.cfg.branch.max_pred_branches {
                self.fetch_stall_reason = Trauma::IfBrch;
                break;
            }
            // A stalled fetch re-reads the same index next cycle; that
            // repeat stays inside the decoded block buffer.
            let inst = self.inst_at(self.next_fetch);

            // I-cache: accessing a new line may miss.
            let line = inst.pc as u64 & line_mask;
            if line != self.cur_fetch_line {
                let access = self.hierarchy.inst_access(line);
                self.cur_fetch_line = line;
                if access.served_by != ServedBy::L1 || access.tlb_miss {
                    self.fetch_stall_until = self.cycle + access.latency as u64;
                    self.fetch_stall_reason = if access.tlb_miss && access.served_by == ServedBy::L1
                    {
                        Trauma::IfTlb1
                    } else {
                        match access.served_by {
                            ServedBy::L2 => Trauma::IfL1,
                            _ => Trauma::IfL2,
                        }
                    };
                    break;
                }
            }

            let seq_if_dispatched =
                self.rob.head_seq() + (self.rob.len() + self.ibuffer.len()) as u64;
            self.ibuffer.push_back((inst, self.cycle));
            self.next_fetch += 1;
            n += 1;

            if inst.op.is_branch() {
                if inst.is_cond_branch() {
                    self.pending_branches += 1;
                    let correct = self.predictor.predict_and_update(inst.pc, inst.taken());
                    if !correct {
                        // Fetch stops until this branch resolves.
                        self.mispredict_blocker = Some(seq_if_dispatched);
                        break;
                    }
                }
                if inst.taken() {
                    // Redirect through the NFA/BTB.
                    if !self.nfa.lookup_insert(inst.pc) {
                        self.fetch_stall_until =
                            self.cycle + self.cfg.branch.nfa_miss_penalty as u64;
                        self.fetch_stall_reason = Trauma::IfNfa;
                    }
                    break; // taken branches end the fetch group
                }
            }
        }
    }

    fn record_occupancy(&mut self) {
        for &class in &UnitClass::ALL {
            let len = self.stations.len(class);
            self.queue_occ[class.index()].record(len);
        }
        self.inflight_occ
            .record(self.rob.len() + self.ibuffer.len());
        self.retireq_occ.record(self.rob.len());
        self.lq_occ.record(self.lsq.loads_len());
        self.sq_occ.record(self.lsq.stores_len());
    }

    /// Stall-reason attribution for a zero-retire cycle.
    fn blame(&self) -> Trauma {
        if let Some(head) = self.rob.front() {
            match head.state {
                State::Executing | State::Done => {
                    // Multi-cycle execution at the head: charge the
                    // resource it occupies.
                    if head.tlb_miss && head.served == Some(ServedBy::L1) {
                        // The page walk, not the cache, is the delay.
                        Trauma::MmTlb1
                    } else {
                        match head.served {
                            Some(ServedBy::L2) => Trauma::MmDl1,
                            Some(ServedBy::Memory) => Trauma::MmDl2,
                            _ => rg_trauma_for(head.inst.op, head.served),
                        }
                    }
                }
                State::Waiting => {
                    if head.mshr_blocked {
                        return Trauma::MmDmqf;
                    }
                    if head.replayed {
                        // Memory-disambiguation replay: the head load
                        // was squashed by a conflicting store and waits
                        // to re-issue — a store-queue conflict.
                        return Trauma::MmStqc;
                    }
                    // First unready dependency decides the blame.
                    for k in 0..head.ndeps as usize {
                        let dep = head.deps[k];
                        if !self.rob.dep_ready(dep, self.cycle) {
                            if let Some(p) = self.rob.entry(dep) {
                                return rg_trauma_for(p.inst.op, p.served);
                            }
                        }
                    }
                    // Ready but not issued: all units busy.
                    ful_trauma(head.queue)
                }
            }
        } else if self.mispredict_blocker.is_some() || self.fetch_stall_reason == Trauma::IfPred {
            Trauma::IfPred
        } else if self.cycle < self.fetch_stall_until {
            self.fetch_stall_reason
        } else if self.dispatch_stall == Some(Trauma::Decode)
            && matches!(
                self.fetch_stall_reason,
                Trauma::IfPred | Trauma::IfNfa | Trauma::IfL1 | Trauma::IfL2
            )
        {
            // Pipeline-refill cycles after a frontend disruption belong
            // to the disruption, not to "decode".
            self.fetch_stall_reason
        } else if let Some(t) = self.dispatch_stall {
            t
        } else if self.next_fetch >= self.n_insts {
            Trauma::Other
        } else {
            Trauma::Decode
        }
    }
}
