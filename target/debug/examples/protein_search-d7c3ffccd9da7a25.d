/root/repo/target/debug/examples/protein_search-d7c3ffccd9da7a25.d: crates/core/../../examples/protein_search.rs Cargo.toml

/root/repo/target/debug/examples/libprotein_search-d7c3ffccd9da7a25.rmeta: crates/core/../../examples/protein_search.rs Cargo.toml

crates/core/../../examples/protein_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
