//! The wire protocol: one JSON object per `\n`-terminated line.
//!
//! Every line a client sends is answered with exactly one line — a
//! result, a pong, a stats snapshot, or a typed error — so request and
//! response streams stay in lockstep even under garbled input, and the
//! chaos suite can do exact one-to-one accounting. Requests:
//!
//! ```json
//! {"op":"search","id":1,"tenant":"t0","engine":"striped","query":"MKWVTF…",
//!  "top_k":10,"min_score":1,"deadline_cells":500000}
//! {"op":"ping","id":2}
//! {"op":"stats","id":3}
//! {"op":"shutdown","id":4}
//! ```
//!
//! A search answers with `{"type":"result", …}` carrying ranked hits,
//! completion/truncation state, and quarantine indices; failures answer
//! with `{"type":"error","id":…,"code":…,"detail":…}` where `code` is a
//! stable [`ErrorCode`] name the load generator and tests key on.
//!
//! Parsing is strict about the fields it understands and tolerant of
//! extras (unknown keys are ignored), so the protocol can grow without
//! breaking old clients. All limits live in [`Limits`] and are enforced
//! here, before a request costs the server anything.

use std::fmt;
use std::time::Duration;

use sapa_align::engine::{Deadline, Engine, SearchResponse};
use sapa_bioseq::{AminoAcid, Sequence};

use crate::json::{self, Json};

/// Hard request-shape limits, enforced at parse time.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Longest accepted frame, in bytes, *excluding* the newline. A
    /// connection that exceeds this mid-line is answered with one
    /// `oversized` error and closed (framing cannot be resynchronized).
    pub max_line_bytes: usize,
    /// Longest accepted query, in residues.
    pub max_query_residues: usize,
    /// Largest accepted `top_k` (the paper's deepest report is 500).
    pub max_top_k: usize,
    /// Longest accepted tenant id, in bytes.
    pub max_tenant_len: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_line_bytes: 64 * 1024,
            max_query_residues: 4096,
            max_top_k: 500,
            max_tenant_len: 64,
        }
    }
}

/// Stable error identifiers, the `code` field of error responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// The frame is not a well-formed request (bad JSON, missing or
    /// mistyped fields, unknown op).
    Malformed,
    /// The frame exceeded [`Limits::max_line_bytes`].
    Oversized,
    /// The query is empty, too long, or not valid residues; or another
    /// search parameter is out of range.
    BadQuery,
    /// The `engine` name is not in the registry.
    UnknownEngine,
    /// Admission control rejected the request: the in-flight cell
    /// budget or queue is full. Retry with backoff.
    Overloaded,
    /// The tenant's token bucket is empty. Retry after the bucket
    /// refills.
    Throttled,
    /// The server is shutting down and not accepting work.
    Unavailable,
    /// The request was admitted but its execution panicked; it was
    /// quarantined without affecting other requests.
    Internal,
}

impl ErrorCode {
    /// Every code, in declaration order.
    pub const ALL: [ErrorCode; 8] = [
        ErrorCode::Malformed,
        ErrorCode::Oversized,
        ErrorCode::BadQuery,
        ErrorCode::UnknownEngine,
        ErrorCode::Overloaded,
        ErrorCode::Throttled,
        ErrorCode::Unavailable,
        ErrorCode::Internal,
    ];

    /// The stable wire spelling.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::Oversized => "oversized",
            ErrorCode::BadQuery => "bad_query",
            ErrorCode::UnknownEngine => "unknown_engine",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Throttled => "throttled",
            ErrorCode::Unavailable => "unavailable",
            ErrorCode::Internal => "internal",
        }
    }

    /// Looks a code up by its wire spelling.
    pub fn from_name(name: &str) -> Option<ErrorCode> {
        ErrorCode::ALL.into_iter().find(|c| c.name() == name)
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A request the server refused, with the typed code and a
/// human-readable detail to send back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reject {
    /// The request id, when the frame parsed far enough to carry one
    /// (so clients can correlate errors with in-flight requests).
    pub id: Option<u64>,
    /// The typed error.
    pub code: ErrorCode,
    /// One-phrase explanation.
    pub detail: String,
}

impl Reject {
    fn new(id: Option<u64>, code: ErrorCode, detail: impl Into<String>) -> Reject {
        Reject {
            id,
            code,
            detail: detail.into(),
        }
    }

    /// Renders this reject as the error line to send.
    pub fn render(&self) -> String {
        render_error(self.id, self.code, &self.detail)
    }
}

/// One fully validated search, ready for admission pricing.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchFrame {
    /// Client-chosen request id, echoed in the response.
    pub id: u64,
    /// Tenant the request is billed to (fairness and quota key).
    pub tenant: String,
    /// Which registry engine scores the scan.
    pub engine: Engine,
    /// The validated query residues.
    pub query: Vec<AminoAcid>,
    /// Ranked hits to report.
    pub top_k: usize,
    /// Minimum raw score to report.
    pub min_score: i32,
    /// Deterministic cell budget, if the client set one.
    pub deadline_cells: Option<u64>,
    /// Best-effort wall deadline in milliseconds, if the client set one.
    pub deadline_ms: Option<u64>,
}

impl SearchFrame {
    /// The engine-layer deadline this frame asks for.
    pub fn deadline(&self) -> Option<Deadline> {
        match (self.deadline_cells, self.deadline_ms) {
            (Some(cells), _) => Some(Deadline::Cells(cells)),
            (None, Some(ms)) => Some(Deadline::Wall(Duration::from_millis(ms))),
            (None, None) => None,
        }
    }
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A database search.
    Search(Box<SearchFrame>),
    /// Liveness probe; answered with a pong.
    Ping {
        /// Optional id echoed back.
        id: Option<u64>,
    },
    /// Counter snapshot request.
    Stats {
        /// Optional id echoed back.
        id: Option<u64>,
    },
    /// Orderly daemon shutdown.
    Shutdown {
        /// Optional id echoed back.
        id: Option<u64>,
    },
}

/// Parses and validates one request line.
///
/// # Errors
///
/// Returns a [`Reject`] carrying the typed [`ErrorCode`] and, when the
/// frame parsed far enough to have one, the request id.
pub fn parse_request(line: &str, limits: &Limits) -> Result<Request, Reject> {
    let root = json::parse(line)
        .map_err(|e| Reject::new(None, ErrorCode::Malformed, format!("invalid json: {e}")))?;
    if root.get("op").is_none() && !matches!(root, Json::Obj(_)) {
        return Err(Reject::new(
            None,
            ErrorCode::Malformed,
            "request must be a json object",
        ));
    }
    let id = root.get("id").and_then(Json::as_u64);
    // Duplicate top-level keys are classic parser-differential bait
    // (two readers disagreeing on which value wins); reject them
    // outright rather than silently taking the first.
    if let Json::Obj(pairs) = &root {
        for (i, (k, _)) in pairs.iter().enumerate() {
            if pairs.iter().skip(i + 1).any(|(other, _)| other == k) {
                return Err(Reject::new(
                    id,
                    ErrorCode::Malformed,
                    format!("duplicate key '{}'", k.escape_default()),
                ));
            }
        }
    }
    let op = root
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| Reject::new(id, ErrorCode::Malformed, "missing string field 'op'"))?;
    match op {
        "ping" => Ok(Request::Ping { id }),
        "stats" => Ok(Request::Stats { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        "search" => parse_search(&root, limits).map(|f| Request::Search(Box::new(f))),
        other => Err(Reject::new(
            id,
            ErrorCode::Malformed,
            format!("unknown op '{}'", other.escape_default()),
        )),
    }
}

fn parse_search(root: &Json, limits: &Limits) -> Result<SearchFrame, Reject> {
    let id = root
        .get("id")
        .and_then(Json::as_u64)
        .ok_or_else(|| Reject::new(None, ErrorCode::Malformed, "search requires a numeric 'id'"))?;
    let some_id = Some(id);

    let tenant = match root.get("tenant") {
        None => "anon".to_string(),
        Some(v) => {
            let t = v.as_str().ok_or_else(|| {
                Reject::new(some_id, ErrorCode::Malformed, "'tenant' must be a string")
            })?;
            if t.is_empty()
                || t.len() > limits.max_tenant_len
                || !t
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.'))
            {
                return Err(Reject::new(
                    some_id,
                    ErrorCode::Malformed,
                    format!(
                        "tenant must be 1-{} chars of [A-Za-z0-9._-]",
                        limits.max_tenant_len
                    ),
                ));
            }
            t.to_string()
        }
    };

    let engine = match root.get("engine") {
        None => Engine::Striped,
        Some(v) => {
            let name = v.as_str().ok_or_else(|| {
                Reject::new(some_id, ErrorCode::Malformed, "'engine' must be a string")
            })?;
            Engine::from_name(name).ok_or_else(|| {
                Reject::new(
                    some_id,
                    ErrorCode::UnknownEngine,
                    format!(
                        "unknown engine '{}'; valid: {}",
                        name.escape_default(),
                        Engine::ALL.map(Engine::name).join(", ")
                    ),
                )
            })?
        }
    };

    let query_text = root
        .get("query")
        .and_then(Json::as_str)
        .ok_or_else(|| Reject::new(some_id, ErrorCode::BadQuery, "missing string field 'query'"))?;
    if query_text.is_empty() {
        return Err(Reject::new(some_id, ErrorCode::BadQuery, "empty query"));
    }
    if query_text.len() > limits.max_query_residues {
        return Err(Reject::new(
            some_id,
            ErrorCode::BadQuery,
            format!(
                "query of {} residues exceeds the {}-residue limit",
                query_text.len(),
                limits.max_query_residues
            ),
        ));
    }
    let query = Sequence::from_str("query", query_text)
        .map_err(|e| Reject::new(some_id, ErrorCode::BadQuery, format!("invalid query: {e}")))?
        .residues()
        .to_vec();

    let top_k = match root.get("top_k") {
        None => 10,
        Some(v) => {
            let k = v.as_u64().ok_or_else(|| {
                Reject::new(
                    some_id,
                    ErrorCode::BadQuery,
                    "'top_k' must be a whole number",
                )
            })?;
            if k == 0 || k > limits.max_top_k as u64 {
                return Err(Reject::new(
                    some_id,
                    ErrorCode::BadQuery,
                    format!("top_k must be in 1..={}", limits.max_top_k),
                ));
            }
            k as usize
        }
    };

    let min_score = match root.get("min_score") {
        None => 1,
        Some(v) => v
            .as_i64()
            .filter(|s| i32::try_from(*s).is_ok())
            .map(|s| s as i32)
            .ok_or_else(|| {
                Reject::new(some_id, ErrorCode::BadQuery, "'min_score' must fit in i32")
            })?,
    };

    let deadline_cells = opt_u64(root, "deadline_cells", some_id)?;
    let deadline_ms = opt_u64(root, "deadline_ms", some_id)?;
    if deadline_cells.is_some() && deadline_ms.is_some() {
        return Err(Reject::new(
            some_id,
            ErrorCode::BadQuery,
            "set at most one of deadline_cells / deadline_ms",
        ));
    }
    if deadline_cells == Some(0) || deadline_ms == Some(0) {
        return Err(Reject::new(
            some_id,
            ErrorCode::BadQuery,
            "deadlines must be at least 1",
        ));
    }

    Ok(SearchFrame {
        id,
        tenant,
        engine,
        query,
        top_k,
        min_score,
        deadline_cells,
        deadline_ms,
    })
}

fn opt_u64(root: &Json, key: &str, id: Option<u64>) -> Result<Option<u64>, Reject> {
    match root.get(key) {
        None => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            Reject::new(
                id,
                ErrorCode::BadQuery,
                format!("'{key}' must be a whole non-negative number"),
            )
        }),
    }
}

/// Renders one error line.
pub fn render_error(id: Option<u64>, code: ErrorCode, detail: &str) -> String {
    Json::obj(vec![
        ("type", Json::str("error")),
        ("id", id.map(Json::num_u64).unwrap_or(Json::Null)),
        ("code", Json::str(code.name())),
        ("detail", Json::str(detail)),
    ])
    .render()
}

/// Renders one search result line from the engine response.
///
/// The `quarantined` array lists database indices whose scoring
/// panicked and was isolated; the request still succeeded over the
/// rest. `truncated_by` is `"cells"`, `"wall"`, or `null`, mirroring
/// [`SearchResponse::truncated_by`].
pub fn render_result(id: u64, resp: &SearchResponse) -> String {
    let hits: Vec<Json> = resp
        .hits
        .iter()
        .map(|h| {
            Json::obj(vec![
                ("index", Json::num_u64(h.seq_index as u64)),
                ("score", Json::Num(f64::from(h.score))),
                ("bits", Json::Num(h.bits)),
                ("evalue", Json::Num(h.evalue)),
            ])
        })
        .collect();
    let quarantined: Vec<Json> = resp
        .stats
        .quarantined
        .iter()
        .map(|q| Json::num_u64(q.index as u64))
        .collect();
    Json::obj(vec![
        ("type", Json::str("result")),
        ("id", Json::num_u64(id)),
        ("engine", Json::str(resp.engine.name())),
        ("completed", Json::Bool(resp.completed)),
        (
            "truncated_by",
            resp.truncated_by
                .map(|k| Json::str(k.name()))
                .unwrap_or(Json::Null),
        ),
        ("coverage", Json::num_u64(resp.coverage as u64)),
        ("rescored", Json::num_u64(resp.stats.rescored as u64)),
        ("quarantined", Json::Arr(quarantined)),
        ("hits", Json::Arr(hits)),
    ])
    .render()
}

/// Renders one pong line.
pub fn render_pong(id: Option<u64>) -> String {
    Json::obj(vec![
        ("type", Json::str("pong")),
        ("id", id.map(Json::num_u64).unwrap_or(Json::Null)),
    ])
    .render()
}

/// Renders one acknowledgement line (used for `shutdown`).
pub fn render_ok(id: Option<u64>, op: &str) -> String {
    Json::obj(vec![
        ("type", Json::str("ok")),
        ("id", id.map(Json::num_u64).unwrap_or(Json::Null)),
        ("op", Json::str(op)),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapa_align::engine::DeadlineKind;

    fn parse_ok(line: &str) -> Request {
        parse_request(line, &Limits::default()).unwrap()
    }

    fn parse_err(line: &str) -> Reject {
        parse_request(line, &Limits::default()).unwrap_err()
    }

    #[test]
    fn control_ops_parse() {
        assert_eq!(parse_ok(r#"{"op":"ping"}"#), Request::Ping { id: None });
        assert_eq!(
            parse_ok(r#"{"op":"stats","id":9}"#),
            Request::Stats { id: Some(9) }
        );
        assert_eq!(
            parse_ok(r#"{"op":"shutdown","id":1}"#),
            Request::Shutdown { id: Some(1) }
        );
    }

    #[test]
    fn search_defaults_and_validation() {
        let Request::Search(f) = parse_ok(r#"{"op":"search","id":3,"query":"HEAGAWGHEE"}"#) else {
            panic!("not a search");
        };
        assert_eq!(f.id, 3);
        assert_eq!(f.tenant, "anon");
        assert_eq!(f.engine, Engine::Striped);
        assert_eq!(f.query.len(), 10);
        assert_eq!(f.top_k, 10);
        assert_eq!(f.min_score, 1);
        assert_eq!(f.deadline(), None);

        let Request::Search(f) = parse_ok(
            r#"{"op":"search","id":4,"tenant":"team-a.1","engine":"BLAST","query":"HEAGAWGHEE","top_k":5,"min_score":20,"deadline_cells":1000}"#,
        ) else {
            panic!("not a search");
        };
        assert_eq!(f.engine, Engine::Blast);
        assert_eq!(f.deadline(), Some(Deadline::Cells(1000)));
        assert_eq!(f.deadline_cells, Some(1000));

        let Request::Search(f) =
            parse_ok(r#"{"op":"search","id":5,"query":"HEAGAWGHEE","deadline_ms":50}"#)
        else {
            panic!("not a search");
        };
        assert_eq!(
            f.deadline(),
            Some(Deadline::Wall(Duration::from_millis(50)))
        );
    }

    #[test]
    fn rejects_carry_typed_codes_and_ids() {
        assert_eq!(parse_err("not json").code, ErrorCode::Malformed);
        assert_eq!(parse_err("[1,2]").code, ErrorCode::Malformed);
        assert_eq!(parse_err(r#"{"op":"evict"}"#).code, ErrorCode::Malformed);
        assert_eq!(
            parse_err(r#"{"op":"search","query":"AA"}"#).code,
            ErrorCode::Malformed
        );

        let r = parse_err(r#"{"op":"search","id":7,"engine":"hmmer","query":"AA"}"#);
        assert_eq!(r.code, ErrorCode::UnknownEngine);
        assert_eq!(r.id, Some(7), "id still correlated on reject");
        assert!(r.detail.contains("striped"), "detail lists valid engines");

        assert_eq!(
            parse_err(r#"{"op":"search","id":1,"query":""}"#).code,
            ErrorCode::BadQuery
        );
        assert_eq!(
            parse_err(r#"{"op":"search","id":1,"query":"B@D"}"#).code,
            ErrorCode::BadQuery
        );
        assert_eq!(
            parse_err(r#"{"op":"search","id":1,"query":"AA","top_k":0}"#).code,
            ErrorCode::BadQuery
        );
        assert_eq!(
            parse_err(r#"{"op":"search","id":1,"query":"AA","top_k":501}"#).code,
            ErrorCode::BadQuery
        );
        assert_eq!(
            parse_err(r#"{"op":"search","id":1,"query":"AA","deadline_cells":5,"deadline_ms":5}"#)
                .code,
            ErrorCode::BadQuery
        );
        assert_eq!(
            parse_err(r#"{"op":"search","id":1,"tenant":"..//..","query":"AA"}"#).code,
            ErrorCode::Malformed
        );
        let long = format!(r#"{{"op":"search","id":1,"query":"{}"}}"#, "A".repeat(5000));
        assert_eq!(parse_err(&long).code, ErrorCode::BadQuery);
    }

    #[test]
    fn error_codes_round_trip() {
        for c in ErrorCode::ALL {
            assert_eq!(ErrorCode::from_name(c.name()), Some(c));
            assert_eq!(format!("{c}"), c.name());
        }
        assert_eq!(ErrorCode::from_name("nope"), None);
    }

    #[test]
    fn rendered_responses_parse_back() {
        let err = render_error(Some(4), ErrorCode::Overloaded, "budget exhausted");
        let v = json::parse(&err).unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("error"));
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(4));
        assert_eq!(v.get("code").and_then(Json::as_str), Some("overloaded"));

        let pong = json::parse(&render_pong(None)).unwrap();
        assert!(pong.get("id").unwrap().is_null());

        use sapa_align::engine::{Quarantined, RankedHit, RunStats};
        let resp = SearchResponse {
            engine: Engine::Striped,
            hits: vec![RankedHit {
                seq_index: 12,
                score: 523,
                bits: 107.3,
                evalue: 1.25e-30,
                alignment: None,
            }],
            stats: RunStats {
                subjects: 300,
                rescored: 2,
                threads: 1,
                quarantined: vec![Quarantined {
                    index: 44,
                    cause: "injected".into(),
                }],
                pruned: 0,
            },
            completed: false,
            truncated_by: Some(DeadlineKind::Cells),
            coverage: 300,
        };
        let line = render_result(9, &resp);
        assert!(!line.contains('\n'));
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("truncated_by").and_then(Json::as_str), Some("cells"));
        assert_eq!(v.get("coverage").and_then(Json::as_u64), Some(300));
        let hits = v.get("hits").and_then(Json::as_arr).unwrap();
        assert_eq!(hits[0].get("index").and_then(Json::as_u64), Some(12));
        assert_eq!(hits[0].get("evalue").and_then(Json::as_f64), Some(1.25e-30));
        let q = v.get("quarantined").and_then(Json::as_arr).unwrap();
        assert_eq!(q[0].as_u64(), Some(44));
    }
}
