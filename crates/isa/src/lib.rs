//! Virtual PowerPC/Altivec-like ISA and instruction tracing.
//!
//! The paper generates PowerPC+Altivec instruction traces of each
//! application with IBM's Aria/MET tools and replays them through the
//! Turandot simulator. This crate is our substitute for Aria/MET: it
//! defines a compact trace instruction format ([`inst::Inst`]), a
//! stable register name space ([`reg`]), a virtual address space
//! allocator ([`mem::AddressSpace`]) so instrumented workloads place
//! their data structures at realistic addresses, and a [`trace::Tracer`]
//! that instrumented kernels emit instructions into while performing the
//! real computation.
//!
//! What matters for the downstream cycle-accurate model is exactly what
//! a real trace carries: the dynamic sequence of instruction classes,
//! their register dependences, their effective addresses, and their
//! branch outcomes. All of those are produced here from the *actual*
//! control flow and data layout of the algorithms, so the
//! data-dependent behaviours the paper characterizes are genuine.
//!
//! ```
//! use sapa_isa::reg;
//! use sapa_isa::trace::Tracer;
//!
//! let mut t = Tracer::new();
//! let h = reg::gpr(3);
//! let e = reg::gpr(4);
//! t.ialu(10, h, &[h, e]);          // h = h + e
//! t.branch(11, true, 10, &[h]);    // loop backedge, taken
//! let trace = t.finish();
//! assert_eq!(trace.len(), 2);
//! assert_eq!(trace.stats().total(), 2);
//! ```

pub mod inst;
pub mod mem;
pub mod packed;
pub mod reg;
pub mod stats;
pub mod trace;
pub mod validate;

pub use inst::{Inst, OpClass};
pub use packed::{BlockDecoder, PackedTrace, TraceError, BLOCK_LEN};
pub use stats::TraceStats;
pub use trace::{Trace, Tracer};

/// Errors produced by this crate.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A serialized trace file had an invalid header or truncated body.
    MalformedTrace {
        /// Description of the structural problem.
        reason: String,
    },
    /// The virtual address space was exhausted.
    OutOfAddressSpace {
        /// Size of the allocation that failed.
        requested: u64,
    },
    /// An underlying I/O error.
    Io(std::io::Error),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::MalformedTrace { reason } => write!(f, "malformed trace: {reason}"),
            Error::OutOfAddressSpace { requested } => {
                write!(
                    f,
                    "virtual address space exhausted ({requested} bytes requested)"
                )
            }
            Error::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;
