//! Multi-threaded database scoring.
//!
//! Database search is embarrassingly parallel across subjects — the
//! paper's related-work section notes that most prior art studies
//! exactly this axis (cluster/SMP scaling) while the paper itself
//! studies the single processor. This module provides the simple
//! subject-parallel driver a downstream user expects: deterministic
//! results regardless of thread count, work-stealing over an atomic
//! cursor, no dependencies beyond `std`.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::result::{Hit, SearchResults};

/// Scores every subject with `score_fn` using `threads` worker
/// threads, returning per-subject scores in subject order (independent
/// of the thread count).
///
/// `score_fn` is called once per subject index and must be pure.
///
/// # Panics
///
/// Panics if `threads` is 0, or propagates a panic from `score_fn`.
pub fn par_scores<F>(subject_count: usize, threads: usize, score_fn: F) -> Vec<i32>
where
    F: Fn(usize) -> i32 + Sync,
{
    assert!(threads > 0, "need at least one thread");
    let mut scores = vec![0i32; subject_count];
    if subject_count == 0 {
        return scores;
    }
    let threads = threads.min(subject_count);
    let cursor = AtomicUsize::new(0);

    // Hand each worker a disjoint set of result slots via a mutable
    // pointer-free channel: collect (index, score) pairs per worker and
    // merge afterwards — simpler than slot slicing and still O(n).
    let mut partials: Vec<Vec<(usize, i32)>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let cursor = &cursor;
            let score_fn = &score_fn;
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= subject_count {
                        break;
                    }
                    local.push((i, score_fn(i)));
                }
                local
            }));
        }
        for h in handles {
            partials.push(h.join().expect("worker panicked"));
        }
    });
    for part in partials {
        for (i, s) in part {
            scores[i] = s;
        }
    }
    scores
}

/// Parallel ranked search: scores every subject with `score_fn` on
/// `threads` threads and returns the best `keep` hits with scores of at
/// least `min_score`.
///
/// # Panics
///
/// Panics if `threads` or `keep` is 0.
pub fn par_search<F>(
    subject_count: usize,
    threads: usize,
    keep: usize,
    min_score: i32,
    score_fn: F,
) -> SearchResults
where
    F: Fn(usize) -> i32 + Sync,
{
    let scores = par_scores(subject_count, threads, score_fn);
    let mut results = SearchResults::new(keep);
    for (seq_index, score) in scores.into_iter().enumerate() {
        if score >= min_score {
            results.push(Hit { seq_index, score });
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sw;
    use sapa_bioseq::db::DatabaseBuilder;
    use sapa_bioseq::matrix::GapPenalties;
    use sapa_bioseq::queries::QuerySet;
    use sapa_bioseq::SubstitutionMatrix;

    #[test]
    fn scores_are_deterministic_across_thread_counts() {
        let queries = QuerySet::paper();
        let query = queries.by_accession("P02232").unwrap().clone();
        let db = DatabaseBuilder::new()
            .seed(3)
            .sequences(30)
            .median_length(80.0)
            .homolog_template(query.clone())
            .build();
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();

        let run = |threads: usize| {
            par_scores(db.len(), threads, |i| {
                sw::score(query.residues(), db.sequences()[i].residues(), &m, g)
            })
        };
        let one = run(1);
        let four = run(4);
        let nine = run(9);
        assert_eq!(one, four);
        assert_eq!(one, nine);
        // And they equal the serial computation.
        for (i, s) in db.iter().enumerate() {
            assert_eq!(one[i], sw::score(query.residues(), s.residues(), &m, g));
        }
    }

    #[test]
    fn ranked_search_matches_serial_filtering() {
        let scores = [5, 40, 12, 40, 3, 99];
        let mut r = par_search(scores.len(), 3, 4, 10, |i| scores[i]);
        let hits = r.hits();
        assert_eq!(hits[0].score, 99);
        assert_eq!(hits[1].score, 40);
        assert_eq!(hits[1].seq_index, 1); // tie broken by index
        assert_eq!(hits[2].seq_index, 3);
        assert_eq!(hits[3].score, 12);
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn empty_database_is_fine() {
        assert!(par_scores(0, 4, |_| 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = par_scores(3, 0, |_| 0);
    }

    #[test]
    fn more_threads_than_subjects_is_fine() {
        let v = par_scores(2, 16, |i| i as i32);
        assert_eq!(v, vec![0, 1]);
    }
}
