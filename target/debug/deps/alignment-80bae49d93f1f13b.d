/root/repo/target/debug/deps/alignment-80bae49d93f1f13b.d: crates/bench/benches/alignment.rs Cargo.toml

/root/repo/target/debug/deps/libalignment-80bae49d93f1f13b.rmeta: crates/bench/benches/alignment.rs Cargo.toml

crates/bench/benches/alignment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
