//! Replaying a packed trace must be microarchitecturally identical to
//! replaying the array-of-structs trace it was packed from — for every
//! workload the suite traces — and packing must be lossless.

use sapa_core::cpu::config::SimConfig;
use sapa_core::cpu::Simulator;
use sapa_core::isa::PackedTrace;
use sapa_core::workloads::{StandardInputs, Workload};

#[test]
fn packed_replay_matches_aos_replay_for_every_workload() {
    let inputs = StandardInputs::with_db_size(12, 1);
    let sim = Simulator::new(SimConfig::four_way());
    for w in Workload::ALL {
        let trace = w.trace(&inputs).trace;
        let packed = PackedTrace::from_trace(&trace);
        assert_eq!(
            sim.run(&trace),
            sim.run_packed(&packed),
            "{w} diverged between packed and unpacked replay"
        );
    }
}

#[test]
fn packing_is_lossless_and_smaller_for_every_workload() {
    let inputs = StandardInputs::with_db_size(12, 1);
    for w in Workload::ALL {
        let trace = w.trace(&inputs).trace;
        let packed = PackedTrace::from_trace(&trace);
        assert_eq!(packed.len(), trace.len());
        let round_trip = packed.to_trace();
        assert_eq!(round_trip.insts(), trace.insts(), "{w} round-trip differs");
        let aos = trace.len() * std::mem::size_of::<sapa_core::isa::Inst>();
        let ratio = aos as f64 / packed.heap_bytes() as f64;
        assert!(
            ratio >= 1.8,
            "{w}: packed {} vs AoS {aos} — only {ratio:.2}x smaller",
            packed.heap_bytes()
        );
    }
}
