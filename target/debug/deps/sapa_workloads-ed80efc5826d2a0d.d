/root/repo/target/debug/deps/sapa_workloads-ed80efc5826d2a0d.d: crates/workloads/src/lib.rs crates/workloads/src/blast.rs crates/workloads/src/blastn.rs crates/workloads/src/fasta.rs crates/workloads/src/layout.rs crates/workloads/src/registry.rs crates/workloads/src/ssearch.rs crates/workloads/src/sw_simd.rs

/root/repo/target/debug/deps/sapa_workloads-ed80efc5826d2a0d: crates/workloads/src/lib.rs crates/workloads/src/blast.rs crates/workloads/src/blastn.rs crates/workloads/src/fasta.rs crates/workloads/src/layout.rs crates/workloads/src/registry.rs crates/workloads/src/ssearch.rs crates/workloads/src/sw_simd.rs

crates/workloads/src/lib.rs:
crates/workloads/src/blast.rs:
crates/workloads/src/blastn.rs:
crates/workloads/src/fasta.rs:
crates/workloads/src/layout.rs:
crates/workloads/src/registry.rs:
crates/workloads/src/ssearch.rs:
crates/workloads/src/sw_simd.rs:
