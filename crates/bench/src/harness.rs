//! A minimal, dependency-free benchmark harness with a Criterion-shaped
//! API.
//!
//! The suite is built for an offline container, so it cannot pull the
//! real `criterion` crate; this module provides the small subset the
//! SAPA benches use — [`Criterion`], benchmark groups, [`BenchmarkId`],
//! [`Throughput`], and the `criterion_group!`/`criterion_main!` macros —
//! on top of `std::time::Instant`.
//!
//! Behaviour:
//!
//! * each benchmark is calibrated (iteration count doubled until one
//!   sample takes ≥ 2 ms), then timed for `sample_size` samples; the
//!   reported figure is the **median** ns/iteration, which is robust to
//!   scheduler noise on shared machines;
//! * positional CLI arguments are substring filters on the
//!   `group/name` id; unknown flags (cargo's `--bench`, etc.) are
//!   ignored;
//! * `--test` runs every benchmark body exactly once without timing —
//!   the CI smoke mode (`cargo bench -- --test`);
//! * results accumulate in [`Criterion::results`] so a bench binary can
//!   post-process them (e.g. emit machine-readable JSON).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Work performed per iteration, used to derive a rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Abstract elements per iteration (cells, residues, instructions).
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier: either a plain name, a parameter, or a
/// `name/parameter` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId(pub(crate) String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// One finished measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Group name (first path component of the id).
    pub group: String,
    /// Benchmark name within the group.
    pub name: String,
    /// Median wall time per iteration, in nanoseconds.
    pub median_ns: f64,
    /// Per-iteration work declared via [`Throughput`], if any.
    pub elements: Option<u64>,
    /// Derived rate (`elements / median_ns * 1e9`), if throughput set.
    pub elements_per_sec: Option<f64>,
}

/// Times one benchmark body. Obtained inside `bench_function` closures.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    fn new(test_mode: bool, sample_size: usize) -> Self {
        Bencher {
            test_mode,
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Runs `f` repeatedly and records per-iteration wall time. In test
    /// mode `f` runs exactly once and nothing is recorded.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Calibrate: double the batch until one batch takes >= 2 ms, so
        // Instant overhead stays < 0.1% of the measurement.
        let floor = Duration::from_millis(2);
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            if t.elapsed() >= floor || iters >= 1 << 24 {
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64;
            self.samples.push(ns / iters as f64);
        }
    }

    fn median_ns(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.total_cmp(b));
        Some(s[s.len() / 2])
    }
}

/// The harness driver: holds configuration, CLI filters, and every
/// result measured so far.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filters: Vec<String>,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            test_mode: false,
            filters: Vec::new(),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Builds a driver from `std::env::args`: positional arguments are
    /// substring filters, `--test` enables run-once smoke mode, and any
    /// other `-`-prefixed flag (cargo's `--bench`) is ignored.
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                c.test_mode = true;
            } else if !arg.starts_with('-') {
                c.filters.push(arg);
            }
        }
        c
    }

    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Copies tuning (sample size) from a config-constructed `Criterion`
    /// without clobbering CLI state. Used by `criterion_group!`.
    pub fn apply_config(&mut self, cfg: Criterion) {
        self.sample_size = cfg.sample_size;
    }

    /// Whether `--test` smoke mode is active.
    pub fn is_test_mode(&self) -> bool {
        self.test_mode
    }

    /// Every measurement taken so far (empty in test mode).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Looks up a finished measurement by group and name.
    pub fn result(&self, group: &str, name: &str) -> Option<&BenchResult> {
        self.results
            .iter()
            .find(|r| r.group == group && r.name == name)
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            throughput: None,
        }
    }

    fn matches(&self, full_id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| full_id.contains(f))
    }

    fn record(&mut self, group: &str, name: &str, b: Bencher, throughput: Option<Throughput>) {
        if self.test_mode {
            println!("{group}/{name}: ok (test mode)");
            return;
        }
        let Some(median_ns) = b.median_ns() else {
            return;
        };
        let elements = match throughput {
            Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) => Some(n),
            None => None,
        };
        let elements_per_sec = elements.map(|n| n as f64 / median_ns * 1e9);
        match elements_per_sec {
            Some(rate) => println!(
                "{group}/{name}: {median_ns:>12.0} ns/iter  ({:.2} Melem/s)",
                rate / 1e6
            ),
            None => println!("{group}/{name}: {median_ns:>12.0} ns/iter"),
        }
        self.results.push(BenchResult {
            group: group.to_string(),
            name: name.to_string(),
            median_ns,
            elements,
            elements_per_sec,
        });
    }
}

/// A group of related benchmarks sharing a name prefix and an optional
/// throughput declaration.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration work for every subsequent bench in the
    /// group.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Times `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().0;
        let full = format!("{}/{}", self.name, id);
        if self.c.matches(&full) {
            let mut b = Bencher::new(self.c.test_mode, self.c.sample_size);
            f(&mut b);
            self.c.record(&self.name, &id, b, self.throughput);
        }
        self
    }

    /// Times `f(bencher, input)` under `id` within this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.0;
        let full = format!("{}/{}", self.name, id);
        if self.c.matches(&full) {
            let mut b = Bencher::new(self.c.test_mode, self.c.sample_size);
            f(&mut b, input);
            self.c.record(&self.name, &id, b, self.throughput);
        }
        self
    }

    /// Ends the group (provided for API compatibility).
    pub fn finish(self) {}
}

/// Defines a benchmark-group function runnable by `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::harness::Criterion) {
            c.apply_config($config);
            $( $target(c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::harness::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Defines `main` for a bench binary: parses CLI args and runs every
/// listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::harness::Criterion::from_args();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_once_and_records_nothing() {
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        let mut calls = 0usize;
        let mut g = c.benchmark_group("g");
        g.bench_function("f", |b| {
            b.iter(|| calls += 1);
        });
        g.finish();
        assert_eq!(calls, 1);
        assert!(c.results().is_empty());
    }

    #[test]
    fn timed_mode_records_median_and_rate() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(1000));
        g.bench_function("busy", |b| {
            b.iter(|| std::hint::black_box((0..100u64).sum::<u64>()));
        });
        g.finish();
        let r = c.result("g", "busy").expect("recorded");
        assert!(r.median_ns > 0.0);
        assert_eq!(r.elements, Some(1000));
        assert!(r.elements_per_sec.unwrap() > 0.0);
    }

    #[test]
    fn filters_skip_non_matching_benches() {
        let mut c = Criterion {
            filters: vec!["keep".to_string()],
            ..Criterion::default()
        };
        let mut ran = Vec::new();
        let mut g = c.benchmark_group("g");
        g.bench_function("keep_me", |b| {
            ran.push("keep");
            b.iter(|| 1 + 1);
        });
        g.bench_function("drop_me", |b| {
            ran.push("drop");
            b.iter(|| 1 + 1);
        });
        g.finish();
        assert_eq!(ran, vec!["keep"]);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("banded", 8).0, "banded/8");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
        let from_str: BenchmarkId = "plain".into();
        assert_eq!(from_str.0, "plain");
    }
}
