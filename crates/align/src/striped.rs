//! Farrar striped SIMD Smith-Waterman — the database-search fast path.
//!
//! The paper's `SW_vmx128`/`SW_vmx256` workloads use the Wozniak
//! anti-diagonal formulation ([`crate::simd_sw`]), which pays two taxes
//! every cell: a per-diagonal lane shuffle (`vperm`, the dominant trauma
//! in the paper's Fig. 9) and a scalar gather of substitution scores.
//! Farrar's *striped* layout (Bioinformatics 2007), as productionized by
//! the SSW library (Zhao et al.) and refined by Snytsar's lazy-F
//! analysis, removes both:
//!
//! * the query is pre-laid-out in a [`QueryProfile`] so the inner loop
//!   loads a whole vector of substitution scores with one load, and
//! * vertical-gap (`F`) propagation across lane boundaries is deferred
//!   to a rare *lazy-F* correction that usually costs one predicate.
//!
//! The lazy-F correction here is *deconstructed* following Snytsar
//! (arXiv:1909.00899): the common no-correction column is a single
//! three-op early-exit test (shift, subtract, compare — no wrap
//! iteration, no stores), and only when that predicate fires does the
//! bounded wrap repair run, visiting each segment at most once per
//! wrap under Farrar's termination test. Snytsar's further step — a
//! `log2(L)`-step max-plus prefix scan folding all wraps into one
//! pass — was implemented and measured slower on this crate's
//! emulated vectors; see `correct_lazy_f`'s comment for the
//! numbers-driven reasoning. The pre-deconstruction Farrar loop is
//! kept as [`score_with_profile_ref`]/[`score_bytes_with_profile_ref`]
//! for the bit-identity property tests and the speedup benchmark.
//!
//! [`score_ends_with_profile`] additionally reports the *end cell* of
//! the best local alignment (SSW-style minimal endpoint: first column
//! attaining the best score, smallest query offset within it) — the
//! first pass of the three-pass traceback in [`crate::traceback`].
//!
//! Two precisions share the machinery:
//!
//! * [`score_with_profile`] — 16-bit signed lanes (`Vector<L>`), exact
//!   for every score below `i16::MAX`;
//! * [`score_bytes_with_profile`] — biased 8-bit unsigned lanes
//!   (`ByteVector<L>`, twice the lanes per register) with saturation
//!   detection; [`score_adaptive_with_profile`] runs bytes first and
//!   rescores the rare overflowing subject in 16-bit — the SSW
//!   overflow-recovery scheme.
//!
//! Every variant is score-identical to the scalar Gotoh oracle
//! ([`crate::sw::score`]); the property suite in `tests/properties.rs`
//! enforces that at both lane widths, both precisions, and across the
//! overflow boundary.
//!
//! ```
//! use sapa_align::striped;
//! use sapa_bioseq::{Sequence, SubstitutionMatrix};
//! use sapa_bioseq::matrix::GapPenalties;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let a = Sequence::from_str("a", "HEAGAWGHEE")?;
//! let b = Sequence::from_str("b", "PAWHEAE")?;
//! let m = SubstitutionMatrix::blosum62();
//! let g = GapPenalties::paper();
//! assert_eq!(striped::score::<8>(a.residues(), b.residues(), &m, g), 17);
//! assert_eq!(striped::score_adaptive::<16, 8>(a.residues(), b.residues(), &m, g), 17);
//! # Ok(())
//! # }
//! ```

use sapa_bioseq::matrix::GapPenalties;
use sapa_bioseq::profile::{QueryProfile, WORD_PAD};
use sapa_bioseq::{AminoAcid, SubstitutionMatrix};
use sapa_vsimd::{ByteVector, Vector};

/// Reusable 16-bit row state for the striped kernel: three arrays of
/// `segments` vectors (H current, H previous, E). A database-search
/// worker allocates one workspace and reuses it for every subject —
/// the buffers are sized by the *query*, which is fixed for the scan.
#[derive(Debug, Clone, Default)]
pub struct Workspace<const L: usize> {
    h_store: Vec<Vector<L>>,
    h_load: Vec<Vector<L>>,
    e: Vec<Vector<L>>,
}

impl<const L: usize> Workspace<L> {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sizes the buffers for `segments` and resets per-subject state.
    fn reset(&mut self, segments: usize) {
        let neg = Vector::<L>::splat(WORD_PAD);
        self.h_store.clear();
        self.h_store.resize(segments, Vector::zero());
        self.h_load.clear();
        self.h_load.resize(segments, Vector::zero());
        self.e.clear();
        self.e.resize(segments, neg);
    }
}

/// Reusable 8-bit row state, the byte-precision sibling of
/// [`Workspace`].
#[derive(Debug, Clone, Default)]
pub struct ByteWorkspace<const L: usize> {
    h_store: Vec<ByteVector<L>>,
    h_load: Vec<ByteVector<L>>,
    e: Vec<ByteVector<L>>,
}

impl<const L: usize> ByteWorkspace<L> {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, segments: usize) {
        self.h_store.clear();
        self.h_store.resize(segments, ByteVector::zero());
        self.h_load.clear();
        self.h_load.resize(segments, ByteVector::zero());
        self.e.clear();
        self.e.resize(segments, ByteVector::zero());
    }
}

/// Striped Smith-Waterman in 16-bit lanes against a prebuilt profile.
///
/// Exact as long as the true score stays below `i16::MAX` (the same
/// contract as [`crate::simd_sw::score`]). `ws` is per-subject scratch
/// that callers reuse across a database scan.
///
/// # Panics
///
/// Panics if the profile was built for a different word lane count.
pub fn score_with_profile<const L: usize>(
    profile: &QueryProfile,
    b: &[AminoAcid],
    gaps: GapPenalties,
    ws: &mut Workspace<L>,
) -> i32 {
    assert_eq!(
        profile.word_lanes(),
        L,
        "profile built for {} word lanes, kernel instantiated for {L}",
        profile.word_lanes()
    );
    if profile.query_len() == 0 || b.is_empty() {
        return 0;
    }
    let segs = profile.word_segments();
    let open_ext = Vector::<L>::splat((gaps.open + gaps.extend) as i16);
    let ext = Vector::<L>::splat(gaps.extend as i16);
    let zero = Vector::<L>::zero();
    let neg = Vector::<L>::splat(WORD_PAD);

    ws.reset(segs);
    let mut vmax = zero;

    for &bj in b {
        let row = profile.word_row(bj);
        // F starts dead: within-column chains that cross a lane
        // boundary are repaired by the lazy-F loop below.
        let mut vf = neg;
        // The diagonal input of segment 0 is the previous column's last
        // segment shifted one lane up; lane 0 gets the H[0][j-1] = 0
        // local-alignment boundary.
        let mut vh = ws.h_store[segs - 1].shift_in_first(0);
        std::mem::swap(&mut ws.h_store, &mut ws.h_load);

        for s in 0..segs {
            // One aligned load replaces the anti-diagonal kernel's
            // per-cell score gather.
            let p = Vector::<L>::from_slice(&row[s * L..]);
            vh = vh.adds(p);
            let e = ws.e[s];
            vh = vh.max(e).max(vf).max(zero);
            vmax = vmax.max(vh);
            ws.h_store[s] = vh;

            let h_open = vh.subs(open_ext);
            ws.e[s] = e.subs(ext).max(h_open);
            vf = vf.subs(ext).max(h_open);

            vh = ws.h_load[s];
        }

        // Deconstructed lazy-F (Snytsar): the common no-correction
        // column is this one predicate — shift, subtract, compare —
        // with no wrap iteration and no stores. Only when it fires
        // does the bounded wrap repair below run, visiting each
        // segment at most once per wrap under Farrar's termination
        // test (at most L wraps). The repair is spelled out inline:
        // hoisting it into a helper — even `#[inline(always)]`, even
        // over plain slices — measurably pessimizes the surrounding
        // loop's auto-vectorization, and `#[cold]`/`#[inline(never)]`
        // variants cost ~5x by un-vectorizing the emulated vector
        // ops. A log2(L)-step max-plus prefix scan folding all wraps
        // into one pass (Snytsar's formulation) also benched slower:
        // the folded F stays live across more segments than any
        // single wrap, and emulated vectors have no branch-cost for
        // the scan to amortize.
        let mut vf = vf.shift_in_first(WORD_PAD);
        if vf.any_gt(ws.h_store[0].subs(open_ext)) {
            'lazy: for _ in 0..L {
                for s in 0..segs {
                    let h = ws.h_store[s].max(vf);
                    ws.h_store[s] = h;
                    vmax = vmax.max(h);
                    let h_open = h.subs(open_ext);
                    // A raised H can also feed next column's E.
                    ws.e[s] = ws.e[s].max(h_open);
                    vf = vf.subs(ext);
                    if !vf.any_gt(h_open) {
                        break 'lazy;
                    }
                }
                vf = vf.shift_in_first(WORD_PAD);
            }
        }
    }

    i32::from(vmax.horizontal_max()).max(0)
}

/// Pre-deconstruction 16-bit kernel: Farrar's original wrap-until-break
/// lazy-F loop, kept verbatim as the bit-identity oracle for the
/// deconstructed kernel (property tests) and as the baseline side of
/// the `lazyf_deconstructed_speedup` benchmark. Not used by any
/// engine.
///
/// # Panics
///
/// Panics if the profile was built for a different word lane count.
pub fn score_with_profile_ref<const L: usize>(
    profile: &QueryProfile,
    b: &[AminoAcid],
    gaps: GapPenalties,
    ws: &mut Workspace<L>,
) -> i32 {
    assert_eq!(
        profile.word_lanes(),
        L,
        "profile built for {} word lanes, kernel instantiated for {L}",
        profile.word_lanes()
    );
    if profile.query_len() == 0 || b.is_empty() {
        return 0;
    }
    let segs = profile.word_segments();
    let open_ext = Vector::<L>::splat((gaps.open + gaps.extend) as i16);
    let ext = Vector::<L>::splat(gaps.extend as i16);
    let zero = Vector::<L>::zero();
    let neg = Vector::<L>::splat(WORD_PAD);

    ws.reset(segs);
    let mut vmax = zero;

    for &bj in b {
        let row = profile.word_row(bj);
        let mut vf = neg;
        let mut vh = ws.h_store[segs - 1].shift_in_first(0);
        std::mem::swap(&mut ws.h_store, &mut ws.h_load);

        for s in 0..segs {
            let p = Vector::<L>::from_slice(&row[s * L..]);
            vh = vh.adds(p);
            let e = ws.e[s];
            vh = vh.max(e).max(vf).max(zero);
            vmax = vmax.max(vh);
            ws.h_store[s] = vh;

            let h_open = vh.subs(open_ext);
            ws.e[s] = e.subs(ext).max(h_open);
            vf = vf.subs(ext).max(h_open);

            vh = ws.h_load[s];
        }

        // Lazy-F: propagate the column's F across lane boundaries until
        // it can no longer raise any H (Farrar's termination test). At
        // most L wraps — each shift advances the chain one lane.
        'lazy: for _ in 0..L {
            vf = vf.shift_in_first(WORD_PAD);
            for s in 0..segs {
                let h = ws.h_store[s].max(vf);
                ws.h_store[s] = h;
                vmax = vmax.max(h);
                let h_open = h.subs(open_ext);
                ws.e[s] = ws.e[s].max(h_open);
                vf = vf.subs(ext);
                if !vf.any_gt(h_open) {
                    break 'lazy;
                }
            }
        }
    }

    i32::from(vmax.horizontal_max()).max(0)
}

/// Byte-precision striped Smith-Waterman against a prebuilt profile:
/// twice the lanes of the word kernel, `None` on (potential) overflow.
///
/// Scores are biased by `profile.bias()` during the profile add, and the
/// kernel bails out as soon as any cell comes within one matrix-maximum
/// of the `u8` ceiling — a `Some` result is always exact.
///
/// # Panics
///
/// Panics if the profile was built for a different byte lane count.
pub fn score_bytes_with_profile<const L: usize>(
    profile: &QueryProfile,
    b: &[AminoAcid],
    gaps: GapPenalties,
    ws: &mut ByteWorkspace<L>,
) -> Option<i32> {
    assert_eq!(
        profile.byte_lanes(),
        L,
        "profile built for {} byte lanes, kernel instantiated for {L}",
        profile.byte_lanes()
    );
    if profile.query_len() == 0 || b.is_empty() {
        return Some(0);
    }
    if !profile.has_bytes() {
        return None; // matrix range too wide for biased u8
    }
    // Saturation guard: while every H stays below this, no saturating
    // add in the next column can clip (H + bias + max_score < 255).
    let guard = 255 - profile.bias() - profile.max_score();
    if guard <= 0 {
        return None;
    }
    let segs = profile.byte_segments();
    let bias_v = ByteVector::<L>::splat(profile.bias() as u8);
    let open_ext = ByteVector::<L>::splat((gaps.open + gaps.extend).min(255) as u8);
    let ext = ByteVector::<L>::splat(gaps.extend.min(255) as u8);

    ws.reset(segs);
    let mut best = 0u8;

    for &bj in b {
        let row = profile.byte_row(bj).expect("byte layout checked above");
        // Unsigned saturating subtraction floors at 0 — exactly the
        // local-alignment zero floor, so F/E start dead at 0.
        let mut vf = ByteVector::<L>::zero();
        let mut vh = ws.h_store[segs - 1].shift_in_first(0);
        std::mem::swap(&mut ws.h_store, &mut ws.h_load);
        let mut colmax = ByteVector::<L>::zero();

        for s in 0..segs {
            let p = ByteVector::<L>::from_slice(&row[s * L..]);
            vh = vh.adds(p).subs(bias_v);
            let e = ws.e[s];
            vh = vh.max(e).max(vf);
            colmax = colmax.max(vh);
            ws.h_store[s] = vh;

            let h_open = vh.subs(open_ext);
            ws.e[s] = e.subs(ext).max(h_open);
            vf = vf.subs(ext).max(h_open);

            vh = ws.h_load[s];
        }

        // Deconstructed lazy-F, byte flavour: dead is 0 (the unsigned
        // floor), so the same one-predicate fast path applies — and
        // fires far more rarely than in 16-bit, because a positive F
        // has to survive the zero floor. Spelled out inline for the
        // same codegen reasons as the word kernel.
        let mut vf = vf.shift_in_first(0);
        if vf.any_gt(ws.h_store[0].subs(open_ext)) {
            'lazy: for _ in 0..L {
                for s in 0..segs {
                    let h = ws.h_store[s].max(vf);
                    ws.h_store[s] = h;
                    colmax = colmax.max(h);
                    let h_open = h.subs(open_ext);
                    ws.e[s] = ws.e[s].max(h_open);
                    vf = vf.subs(ext);
                    if !vf.any_gt(h_open) {
                        break 'lazy;
                    }
                }
                vf = vf.shift_in_first(0);
            }
        }

        let cm = colmax.horizontal_max();
        if cm > best {
            best = cm;
        }
        if i32::from(best) >= guard {
            return None; // next column could clip — rescore in 16-bit
        }
    }

    Some(i32::from(best))
}

/// Pre-deconstruction byte kernel — the bit-identity oracle for
/// [`score_bytes_with_profile`], including identical `None`
/// (saturation) decisions. Not used by any engine.
///
/// # Panics
///
/// Panics if the profile was built for a different byte lane count.
pub fn score_bytes_with_profile_ref<const L: usize>(
    profile: &QueryProfile,
    b: &[AminoAcid],
    gaps: GapPenalties,
    ws: &mut ByteWorkspace<L>,
) -> Option<i32> {
    assert_eq!(
        profile.byte_lanes(),
        L,
        "profile built for {} byte lanes, kernel instantiated for {L}",
        profile.byte_lanes()
    );
    if profile.query_len() == 0 || b.is_empty() {
        return Some(0);
    }
    if !profile.has_bytes() {
        return None;
    }
    let guard = 255 - profile.bias() - profile.max_score();
    if guard <= 0 {
        return None;
    }
    let segs = profile.byte_segments();
    let bias_v = ByteVector::<L>::splat(profile.bias() as u8);
    let open_ext = ByteVector::<L>::splat((gaps.open + gaps.extend).min(255) as u8);
    let ext = ByteVector::<L>::splat(gaps.extend.min(255) as u8);

    ws.reset(segs);
    let mut best = 0u8;

    for &bj in b {
        let row = profile.byte_row(bj).expect("byte layout checked above");
        let mut vf = ByteVector::<L>::zero();
        let mut vh = ws.h_store[segs - 1].shift_in_first(0);
        std::mem::swap(&mut ws.h_store, &mut ws.h_load);
        let mut colmax = ByteVector::<L>::zero();

        for s in 0..segs {
            let p = ByteVector::<L>::from_slice(&row[s * L..]);
            vh = vh.adds(p).subs(bias_v);
            let e = ws.e[s];
            vh = vh.max(e).max(vf);
            colmax = colmax.max(vh);
            ws.h_store[s] = vh;

            let h_open = vh.subs(open_ext);
            ws.e[s] = e.subs(ext).max(h_open);
            vf = vf.subs(ext).max(h_open);

            vh = ws.h_load[s];
        }

        'lazy: for _ in 0..L {
            vf = vf.shift_in_first(0);
            for s in 0..segs {
                let h = ws.h_store[s].max(vf);
                ws.h_store[s] = h;
                colmax = colmax.max(h);
                let h_open = h.subs(open_ext);
                ws.e[s] = ws.e[s].max(h_open);
                vf = vf.subs(ext);
                if !vf.any_gt(h_open) {
                    break 'lazy;
                }
            }
        }

        let cm = colmax.horizontal_max();
        if cm > best {
            best = cm;
        }
        if i32::from(best) >= guard {
            return None;
        }
    }

    Some(i32::from(best))
}

/// Adaptive-precision striped search step: byte pass first (double the
/// lanes), exact 16-bit rescore on overflow. `LB` is the byte lane
/// count and `LW` the word lane count of the same register width
/// (16/8 for the 128-bit model, 32/16 for the 256-bit extension).
pub fn score_adaptive_with_profile<const LB: usize, const LW: usize>(
    profile: &QueryProfile,
    b: &[AminoAcid],
    gaps: GapPenalties,
    bws: &mut ByteWorkspace<LB>,
    ws: &mut Workspace<LW>,
) -> i32 {
    match score_bytes_with_profile::<LB>(profile, b, gaps, bws) {
        Some(s) => s,
        None => score_with_profile::<LW>(profile, b, gaps, ws),
    }
}

/// Best local score plus the *inclusive* coordinates of the cell it is
/// attained in, as reported by [`score_ends_with_profile`].
///
/// When `score == 0` there is no positive-scoring alignment and the
/// end coordinates are meaningless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScoreEnds {
    /// Best local-alignment score (0 if nothing scores positive).
    pub score: i32,
    /// Query index (0-based, inclusive) of the best cell.
    pub query_end: usize,
    /// Subject index (0-based, inclusive) of the best cell.
    pub subject_end: usize,
}

/// 16-bit striped pass that also tracks *where* the best score is
/// attained — the first pass of the SSW-style three-pass traceback.
///
/// End selection is deterministic and minimal: the reported cell lies
/// in the **first** subject column whose maximum strictly exceeds every
/// earlier column's, and within that column at the **smallest** query
/// index attaining the column maximum. Running the same rule on the
/// reversed prefixes (second pass) is what pins the start coordinates;
/// see [`crate::traceback::align_hit`].
///
/// Scores are identical to [`score_with_profile`]; the extra cost is a
/// per-column max-fold over the segments, which is why the engines use
/// the plain kernel for scanning and this one only for reported hits.
///
/// # Panics
///
/// Panics if the profile was built for a different word lane count.
pub fn score_ends_with_profile<const L: usize>(
    profile: &QueryProfile,
    b: &[AminoAcid],
    gaps: GapPenalties,
    ws: &mut Workspace<L>,
) -> ScoreEnds {
    assert_eq!(
        profile.word_lanes(),
        L,
        "profile built for {} word lanes, kernel instantiated for {L}",
        profile.word_lanes()
    );
    let mut ends = ScoreEnds {
        score: 0,
        query_end: 0,
        subject_end: 0,
    };
    if profile.query_len() == 0 || b.is_empty() {
        return ends;
    }
    let m = profile.query_len();
    let segs = profile.word_segments();
    let open_ext = Vector::<L>::splat((gaps.open + gaps.extend) as i16);
    let ext = Vector::<L>::splat(gaps.extend as i16);
    let zero = Vector::<L>::zero();
    let neg = Vector::<L>::splat(WORD_PAD);

    ws.reset(segs);
    let mut vmax = zero;
    let mut best_v = zero;

    for (j, &bj) in b.iter().enumerate() {
        let row = profile.word_row(bj);
        let mut vf = neg;
        let mut vh = ws.h_store[segs - 1].shift_in_first(0);
        std::mem::swap(&mut ws.h_store, &mut ws.h_load);

        for s in 0..segs {
            let p = Vector::<L>::from_slice(&row[s * L..]);
            vh = vh.adds(p);
            let e = ws.e[s];
            vh = vh.max(e).max(vf).max(zero);
            vmax = vmax.max(vh);
            ws.h_store[s] = vh;

            let h_open = vh.subs(open_ext);
            ws.e[s] = e.subs(ext).max(h_open);
            vf = vf.subs(ext).max(h_open);

            vh = ws.h_load[s];
        }

        // Same deconstructed correction as `score_with_profile`; see
        // the comment there for why it is spelled out inline.
        let mut vf = vf.shift_in_first(WORD_PAD);
        if vf.any_gt(ws.h_store[0].subs(open_ext)) {
            'lazy: for _ in 0..L {
                for s in 0..segs {
                    let h = ws.h_store[s].max(vf);
                    ws.h_store[s] = h;
                    vmax = vmax.max(h);
                    let h_open = h.subs(open_ext);
                    ws.e[s] = ws.e[s].max(h_open);
                    vf = vf.subs(ext);
                    if !vf.any_gt(h_open) {
                        break 'lazy;
                    }
                }
                vf = vf.shift_in_first(WORD_PAD);
            }
        }

        // Endpoint tracking: a strict improvement pins this column;
        // the lane-outer / segment-inner sweep visits cells in
        // increasing query order, so the first match is the minimal
        // query index. Padding cells can never attain a new best —
        // their H descends (gap-penalised) from a real cell already
        // folded into the running best.
        let mut colv = ws.h_store[0];
        for s in 1..segs {
            colv = colv.max(ws.h_store[s]);
        }
        if colv.any_gt(best_v) {
            let col_best = colv.horizontal_max();
            best_v = Vector::<L>::splat(col_best);
            'find: for k in 0..L {
                for s in 0..segs {
                    if ws.h_store[s].extract(k) == col_best {
                        let q = k * segs + s;
                        if q < m {
                            ends.query_end = q;
                            ends.subject_end = j;
                            break 'find;
                        }
                    }
                }
            }
        }
    }

    ends.score = i32::from(vmax.horizontal_max()).max(0);
    ends
}

/// One-shot 16-bit striped score: builds the profile and workspace
/// internally. For database scans, build a [`QueryProfile`] once and
/// use [`score_with_profile`] (or the batched driver in
/// [`crate::parallel`]) instead.
pub fn score<const L: usize>(
    a: &[AminoAcid],
    b: &[AminoAcid],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
) -> i32 {
    let profile = QueryProfile::build(a, matrix, L);
    let mut ws = Workspace::<L>::new();
    score_with_profile::<L>(&profile, b, gaps, &mut ws)
}

/// One-shot byte-precision striped score (`None` on overflow).
///
/// `L` is the byte lane count; the profile is built for `L / 2` word
/// lanes, matching [`score_adaptive`].
///
/// # Panics
///
/// Panics if `L` is odd.
pub fn score_bytes<const L: usize>(
    a: &[AminoAcid],
    b: &[AminoAcid],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
) -> Option<i32> {
    assert!(L.is_multiple_of(2), "byte lane count must be even");
    let profile = QueryProfile::build(a, matrix, L / 2);
    let mut ws = ByteWorkspace::<L>::new();
    score_bytes_with_profile::<L>(&profile, b, gaps, &mut ws)
}

/// One-shot adaptive striped score (byte pass + 16-bit rescore).
pub fn score_adaptive<const LB: usize, const LW: usize>(
    a: &[AminoAcid],
    b: &[AminoAcid],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
) -> i32 {
    let profile = QueryProfile::build(a, matrix, LW);
    let mut bws = ByteWorkspace::<LB>::new();
    let mut ws = Workspace::<LW>::new();
    score_adaptive_with_profile::<LB, LW>(&profile, b, gaps, &mut bws, &mut ws)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sw;
    use sapa_bioseq::Sequence;

    fn seq(s: &str) -> Vec<AminoAcid> {
        Sequence::from_str("t", s).unwrap().residues().to_vec()
    }

    fn bl62() -> SubstitutionMatrix {
        SubstitutionMatrix::blosum62()
    }

    #[test]
    fn matches_scalar_on_small_cases() {
        let m = bl62();
        let g = GapPenalties::paper();
        let cases = [
            ("A", "A"),
            ("A", "W"),
            ("HEAGAWGHEE", "PAWHEAE"),
            ("MKVLAA", "MKVLAA"),
            ("ACDEFGHIKLMNPQRSTVWY", "YWVTSRQPNMLKIHGFEDCA"),
            ("MKWVTFISLLFLFSSAYS", "MKWVTFISLL"),
            ("WW", "WWWWWWWWWWWWWWWWWWWWWWWW"),
        ];
        for (x, y) in cases {
            let a = seq(x);
            let b = seq(y);
            let expect = sw::score(&a, &b, &m, g);
            assert_eq!(score::<8>(&a, &b, &m, g), expect, "striped-128 {x} vs {y}");
            assert_eq!(score::<16>(&a, &b, &m, g), expect, "striped-256 {x} vs {y}");
        }
    }

    #[test]
    fn lane_boundary_gaps_need_lazy_f() {
        // A deletion spanning several query rows forces F chains across
        // lane boundaries — the exact case the lazy-F loop repairs.
        let m = bl62();
        let g = GapPenalties::new(2, 1);
        let a = seq("ACDEFGHIKLMNPQRSTVWYACDEFGHIKL");
        let b = seq("ACDEFGPQRSTVWYACDEFGHIKL");
        let expect = sw::score(&a, &b, &m, g);
        assert_eq!(score::<8>(&a, &b, &m, g), expect);
        assert_eq!(score::<16>(&a, &b, &m, g), expect);
    }

    #[test]
    fn query_shorter_than_one_stripe() {
        let m = bl62();
        let g = GapPenalties::paper();
        let a = seq("AW");
        let b = seq("HEAGAWGHEE");
        let expect = sw::score(&a, &b, &m, g);
        assert_eq!(score::<8>(&a, &b, &m, g), expect);
        assert_eq!(score::<16>(&a, &b, &m, g), expect);
        assert_eq!(score_bytes::<16>(&a, &b, &m, g), Some(expect));
    }

    #[test]
    fn empty_inputs_score_zero() {
        let m = bl62();
        let g = GapPenalties::paper();
        assert_eq!(score::<8>(&[], &seq("AC"), &m, g), 0);
        assert_eq!(score::<8>(&seq("AC"), &[], &m, g), 0);
        assert_eq!(score_bytes::<16>(&[], &seq("AC"), &m, g), Some(0));
        assert_eq!(score_adaptive::<16, 8>(&seq("AC"), &[], &m, g), 0);
    }

    #[test]
    fn byte_pass_overflow_recovers_exactly() {
        let m = bl62();
        let g = GapPenalties::paper();
        let a = seq(&"MKWVTFISLL".repeat(8));
        assert_eq!(score_bytes::<16>(&a, &a, &m, g), None);
        let expect = sw::score(&a, &a, &m, g);
        assert_eq!(score_adaptive::<16, 8>(&a, &a, &m, g), expect);
        assert_eq!(score_adaptive::<32, 16>(&a, &a, &m, g), expect);
    }

    #[test]
    fn workspace_reuse_is_clean_across_subjects() {
        // Scoring a high-scoring subject then a dissimilar one must not
        // leak state through the reused buffers.
        let m = bl62();
        let g = GapPenalties::paper();
        let q = seq("MKWVTFISLLFLFSSAYSRGVFRR");
        let profile = QueryProfile::build(&q, &m, 8);
        let mut ws = Workspace::<8>::new();
        let hot = seq("MKWVTFISLLFLFSSAYSRGVFRR");
        let cold = seq("GGGGG");
        let s1 = score_with_profile::<8>(&profile, &hot, g, &mut ws);
        let s2 = score_with_profile::<8>(&profile, &cold, g, &mut ws);
        let s3 = score_with_profile::<8>(&profile, &hot, g, &mut ws);
        assert_eq!(s1, sw::score(&q, &hot, &m, g));
        assert_eq!(s2, sw::score(&q, &cold, &m, g));
        assert_eq!(s1, s3);
    }

    #[test]
    #[should_panic(expected = "word lanes")]
    fn wrong_lane_width_is_rejected() {
        let m = bl62();
        let profile = QueryProfile::build(&seq("ACD"), &m, 8);
        let mut ws = Workspace::<16>::new();
        let _ = score_with_profile::<16>(&profile, &seq("ACD"), GapPenalties::paper(), &mut ws);
    }

    #[test]
    fn deconstructed_matches_reference_kernel() {
        let m = bl62();
        // Cheap gaps force real cross-lane corrections.
        let g = GapPenalties::new(2, 1);
        let a = seq("ACDEFGHIKLMNPQRSTVWYACDEFGHIKL");
        let b = seq("ACDEFGPQRSTVWYACDEFGHIKL");
        let profile = QueryProfile::build(&a, &m, 8);
        let mut ws = Workspace::<8>::new();
        let mut ws_ref = Workspace::<8>::new();
        assert_eq!(
            score_with_profile::<8>(&profile, &b, g, &mut ws),
            score_with_profile_ref::<8>(&profile, &b, g, &mut ws_ref),
        );
        let mut bws = ByteWorkspace::<16>::new();
        let mut bws_ref = ByteWorkspace::<16>::new();
        assert_eq!(
            score_bytes_with_profile::<16>(&profile, &b, g, &mut bws),
            score_bytes_with_profile_ref::<16>(&profile, &b, g, &mut bws_ref),
        );
    }

    #[test]
    fn score_ends_locates_best_cell() {
        let m = bl62();
        let g = GapPenalties::paper();
        // Query = subject: the best cell is the last residue of both.
        let q = seq("MKWVTFISLLFLFSSAYSRGVFRR");
        let profile = QueryProfile::build(&q, &m, 8);
        let mut ws = Workspace::<8>::new();
        let ends = score_ends_with_profile::<8>(&profile, &q, g, &mut ws);
        assert_eq!(ends.score, sw::score(&q, &q, &m, g));
        assert_eq!(ends.query_end, q.len() - 1);
        assert_eq!(ends.subject_end, q.len() - 1);

        // An embedded match: query sits inside a longer subject.
        let subj = seq("GGGGGMKWVTFISLLFLFSSAYSRGVFRRGGGGG");
        let ends = score_ends_with_profile::<8>(&profile, &subj, g, &mut ws);
        assert_eq!(ends.score, sw::score(&q, &subj, &m, g));
        assert_eq!(ends.query_end, q.len() - 1);
        assert_eq!(ends.subject_end, 5 + q.len() - 1);

        // No positive score: empty inputs report zero.
        let empty = score_ends_with_profile::<8>(&profile, &[], g, &mut ws);
        assert_eq!(empty.score, 0);
    }

    #[test]
    fn wide_matrix_falls_back_to_words() {
        // uniform(120, -120) cannot be biased into u8; adaptive must
        // still return the exact word-precision score.
        let m = SubstitutionMatrix::uniform(120, -120);
        let g = GapPenalties::paper();
        let a = seq("ACDEFG");
        let b = seq("ACDEFG");
        assert_eq!(score_bytes::<16>(&a, &b, &m, g), None);
        let expect = sw::score(&a, &b, &m, g);
        assert_eq!(score_adaptive::<16, 8>(&a, &b, &m, g), expect);
    }
}
