//! Anti-diagonal SIMD Smith-Waterman (Wozniak-style), the algorithm of
//! the paper's `SW_vmx128` and `SW_vmx256` workloads.
//!
//! The query is processed in horizontal *strips* of `L` rows (`L` = lane
//! count: 8 for 128-bit Altivec, 16 for the 256-bit extension). Within a
//! strip, cells along an anti-diagonal are independent, so one vector
//! register holds `L` cells `(i0 + k, d - k)` of diagonal `d`. The
//! neighbour values each cell needs arrive from the two previous
//! diagonal registers, shifted by one lane — the `vperm`/`vsldoi`
//! operations that dominate the paper's `RG_VPER` trauma histograms —
//! with the strip's top-row boundary values inserted into lane 0 from
//! the carry rows of the strip above.
//!
//! The implementation is exactly score-equivalent to the scalar Gotoh
//! recurrence ([`crate::sw::score`]); the property tests in this module
//! and in `tests/` enforce that for both lane widths.

use sapa_bioseq::matrix::GapPenalties;
use sapa_bioseq::{AminoAcid, SubstitutionMatrix};
use sapa_vsimd::Vector;

/// "Minus infinity" for 16-bit lanes; deep enough that repeated
/// saturating subtraction cannot wrap it into the valid score range.
const NEG16: i16 = -25000;

/// Computes the Smith-Waterman score with `L`-lane vectors.
///
/// `L = 8` reproduces `SW_vmx128`; `L = 16` reproduces `SW_vmx256`.
/// Scores are computed in 16-bit saturating lanes, which is exact as
/// long as the true score stays below `i16::MAX` (guaranteed for the
/// suite's query lengths; a 222-residue perfect self-match scores
/// ≈ 2400).
///
/// ```
/// use sapa_align::simd_sw;
/// use sapa_bioseq::{Sequence, SubstitutionMatrix};
/// use sapa_bioseq::matrix::GapPenalties;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Sequence::from_str("a", "HEAGAWGHEE")?;
/// let b = Sequence::from_str("b", "PAWHEAE")?;
/// let m = SubstitutionMatrix::blosum62();
/// let g = GapPenalties::paper();
/// let s128 = simd_sw::score::<8>(a.residues(), b.residues(), &m, g);
/// let s256 = simd_sw::score::<16>(a.residues(), b.residues(), &m, g);
/// assert_eq!(s128, s256);
/// # Ok(())
/// # }
/// ```
pub fn score<const L: usize>(
    a: &[AminoAcid],
    b: &[AminoAcid],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
) -> i32 {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let m = a.len();
    let n = b.len();
    let open_ext = Vector::<L>::splat((gaps.open + gaps.extend) as i16);
    let ext = Vector::<L>::splat(gaps.extend as i16);
    let zero = Vector::<L>::zero();
    let neg = Vector::<L>::splat(NEG16);

    // Carry rows between strips: H and F of the strip's last row.
    // Index j = column. For the virtual row above the matrix H = 0 and
    // F = -inf (no vertical gap can enter from outside).
    let mut carry_h = vec![0i16; n];
    let mut carry_f = vec![NEG16; n];

    let mut vbest = zero;

    let mut i0 = 0;
    while i0 < m {
        let mut next_h = vec![0i16; n];
        let mut next_f = vec![NEG16; n];

        // Diagonal registers: values at diagonals d-1 and d-2.
        let mut h_dm1 = neg;
        let mut h_dm2 = neg;
        let mut e_dm1 = neg;
        let mut f_dm1 = neg;

        let diag_count = n + L - 1;
        for d in 0..diag_count {
            // Boundary values entering lane 0 (row i0 needs row i0-1).
            let b_h = boundary(&carry_h, d as isize, n); // H[i0-1][d]
            let b_f = boundary(&carry_f, d as isize, n); // F[i0-1][d]
            let b_hd = boundary(&carry_h, d as isize - 1, n); // H[i0-1][d-1]

            // E (horizontal gap): same lane of the previous diagonal.
            let e_d = e_dm1.subs(ext).max(h_dm1.subs(open_ext));

            // F (vertical gap): previous lane of the previous diagonal,
            // boundary row entering lane 0.
            let f_shift = f_dm1.shift_in_first(b_f);
            let h_shift = h_dm1.shift_in_first(b_h);
            let f_d = f_shift.subs(ext).max(h_shift.subs(open_ext));

            // Diagonal H: previous lane of diagonal d-2.
            let mut h_diag = h_dm2.shift_in_first(b_hd);
            if d < L {
                // Lane d computes column 0 of row i0+d; its diagonal
                // predecessor is the virtual column -1, where H = 0.
                h_diag = h_diag.insert(d, 0);
            }

            // Substitution scores for the cells of this diagonal.
            let s_d = gather_scores::<L>(a, b, matrix, i0, d);

            let h_d = h_diag.adds(s_d).max(e_d).max(f_d).max(zero);

            vbest = vbest.max(h_d);

            // Record the strip's last row for the next strip's boundary.
            if d + 1 >= L {
                let col = d + 1 - L;
                if col < n {
                    next_h[col] = h_d.extract(L - 1);
                    next_f[col] = f_d.extract(L - 1);
                }
            }

            h_dm2 = h_dm1;
            h_dm1 = h_d;
            e_dm1 = e_d;
            f_dm1 = f_d;
        }

        carry_h = next_h;
        carry_f = next_f;
        i0 += L;
    }

    i32::from(vbest.horizontal_max()).max(0)
}

/// Boundary lookup with -inf outside the matrix.
#[inline]
fn boundary(row: &[i16], j: isize, n: usize) -> i16 {
    if j >= 0 && (j as usize) < n {
        row[j as usize]
    } else {
        NEG16
    }
}

/// Builds the substitution-score vector for diagonal `d` of the strip
/// starting at query row `i0`: lane `k` scores `a[i0+k]` vs `b[d-k]`,
/// or -inf for lanes outside the matrix.
#[inline]
fn gather_scores<const L: usize>(
    a: &[AminoAcid],
    b: &[AminoAcid],
    matrix: &SubstitutionMatrix,
    i0: usize,
    d: usize,
) -> Vector<L> {
    let mut v = Vector::<L>::splat(NEG16);
    let m = a.len();
    let n = b.len();
    for k in 0..L {
        let i = i0 + k;
        if i >= m || d < k {
            continue;
        }
        let j = d - k;
        if j < n {
            v = v.insert(k, matrix.score(a[i], b[j]) as i16);
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sw;
    use sapa_bioseq::Sequence;

    fn seq(s: &str) -> Vec<AminoAcid> {
        Sequence::from_str("t", s).unwrap().residues().to_vec()
    }

    fn bl62() -> SubstitutionMatrix {
        SubstitutionMatrix::blosum62()
    }

    #[test]
    fn matches_scalar_on_small_cases() {
        let m = bl62();
        let g = GapPenalties::paper();
        let cases = [
            ("A", "A"),
            ("A", "W"),
            ("HEAGAWGHEE", "PAWHEAE"),
            ("MKVLAA", "MKVLAA"),
            ("ACDEFGHIKLMNPQRSTVWY", "YWVTSRQPNMLKIHGFEDCA"),
            ("MKWVTFISLLFLFSSAYS", "MKWVTFISLL"),
            ("WW", "WWWWWWWWWWWWWWWWWWWWWWWW"),
        ];
        for (x, y) in cases {
            let a = seq(x);
            let b = seq(y);
            let expect = sw::score(&a, &b, &m, g);
            assert_eq!(score::<8>(&a, &b, &m, g), expect, "vmx128 {x} vs {y}");
            assert_eq!(score::<16>(&a, &b, &m, g), expect, "vmx256 {x} vs {y}");
        }
    }

    #[test]
    fn strip_boundaries_are_exercised() {
        // Query longer than several strips for both lane widths.
        let m = bl62();
        let g = GapPenalties::paper();
        let a = seq(&"MKWVTFISLLLFSSAYSRGVFRRDAHKSEVAHRFKDLGE".repeat(2));
        let b = seq("FISLLLFSSAYSRGVFRRDAHKSEV");
        let expect = sw::score(&a, &b, &m, g);
        assert_eq!(score::<8>(&a, &b, &m, g), expect);
        assert_eq!(score::<16>(&a, &b, &m, g), expect);
    }

    #[test]
    fn gapped_alignment_across_strips() {
        let m = bl62();
        let g = GapPenalties::new(5, 1);
        // Force a vertical gap spanning a strip boundary: b matches a
        // with a block deleted near row 8.
        let a = seq("ACDEFGHIKLMNPQRSTVWYACDEFGHIKL");
        let b = seq("ACDEFGHIPQRSTVWYACDEFGHIKL");
        let expect = sw::score(&a, &b, &m, g);
        assert_eq!(score::<8>(&a, &b, &m, g), expect);
        assert_eq!(score::<16>(&a, &b, &m, g), expect);
    }

    #[test]
    fn empty_inputs_score_zero() {
        let m = bl62();
        let g = GapPenalties::paper();
        assert_eq!(score::<8>(&[], &seq("AC"), &m, g), 0);
        assert_eq!(score::<8>(&seq("AC"), &[], &m, g), 0);
    }

    #[test]
    fn dissimilar_sequences_score_zero_or_small() {
        let m = bl62();
        let g = GapPenalties::paper();
        let a = seq("AAAAAAAA");
        let b = seq("WWWWWWWW");
        let expect = sw::score(&a, &b, &m, g);
        assert_eq!(score::<8>(&a, &b, &m, g), expect);
    }
}

/// Byte-precision Smith-Waterman over unsigned 8-bit lanes — the fast
/// first pass real SIMD implementations run (16 lanes per 128-bit
/// register instead of 8), falling back to 16-bit only on overflow.
///
/// Returns `None` when any cell's score comes within the safety margin
/// of `u8::MAX`, in which case the caller must re-run at 16-bit
/// precision (see [`score_adaptive`]).
///
/// Local-alignment scores are non-negative, so unsigned saturating
/// subtraction provides the zero floor for free; substitution scores
/// are biased by `-matrix.min_score()` before the add and un-biased
/// after.
pub fn score_bytes<const L: usize>(
    a: &[AminoAcid],
    b: &[AminoAcid],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
) -> Option<i32> {
    use sapa_vsimd::ByteVector;

    if a.is_empty() || b.is_empty() {
        return Some(0);
    }
    let m = a.len();
    let n = b.len();
    let bias = (-matrix.min_score()).max(0);
    if bias > 100 || matrix.max_score() + bias > 120 {
        return None; // matrix too wide for byte precision
    }
    let bias_v = ByteVector::<L>::splat(bias as u8);
    let open_ext = ByteVector::<L>::splat((gaps.open + gaps.extend).min(255) as u8);
    let ext = ByteVector::<L>::splat(gaps.extend.min(255) as u8);
    const OVERFLOW_GUARD: u8 = 250;

    // Carry rows between strips (H of the strip's last row; F decays
    // from it). u8 floor-at-zero representation throughout.
    let mut carry_h = vec![0u8; n];
    let mut carry_f = vec![0u8; n];

    let mut best = 0u8;

    let mut i0 = 0usize;
    while i0 < m {
        let mut next_h = vec![0u8; n];
        let mut next_f = vec![0u8; n];

        let mut h_dm1 = ByteVector::<L>::zero();
        let mut h_dm2 = ByteVector::<L>::zero();
        let mut e_dm1 = ByteVector::<L>::zero();
        let mut f_dm1 = ByteVector::<L>::zero();

        for d in 0..(n + L - 1) {
            let b_h = if d < n { carry_h[d] } else { 0 };
            let b_f = if d < n { carry_f[d] } else { 0 };
            let b_hd = if d >= 1 && d - 1 < n {
                carry_h[d - 1]
            } else {
                0
            };

            let e_d = e_dm1.subs(ext).max(h_dm1.subs(open_ext));
            let f_shift = f_dm1.shift_in_first(b_f);
            let h_shift = h_dm1.shift_in_first(b_h);
            let f_d = f_shift.subs(ext).max(h_shift.subs(open_ext));

            let mut h_diag = h_dm2.shift_in_first(b_hd);
            if d < L {
                h_diag = h_diag.insert(d, 0);
            }

            // Gather biased scores; invalid lanes get 0 (= true score
            // −bias, at or below the matrix minimum, so they decay).
            let mut s_d = ByteVector::<L>::zero();
            for k in 0..L {
                let i = i0 + k;
                if i >= m || d < k {
                    continue;
                }
                let j = d - k;
                if j < n {
                    s_d = s_d.insert(k, (matrix.score(a[i], b[j]) + bias) as u8);
                }
            }

            let summed = h_diag.adds(s_d);
            if summed.horizontal_max() >= OVERFLOW_GUARD {
                return None;
            }
            let h_d = summed.subs(bias_v).max(e_d).max(f_d);

            let hm = h_d.horizontal_max();
            if hm > best {
                best = hm;
            }

            if d + 1 >= L {
                let col = d + 1 - L;
                if col < n {
                    next_h[col] = h_d.extract(L - 1);
                    next_f[col] = f_d.extract(L - 1);
                }
            }

            h_dm2 = h_dm1;
            h_dm1 = h_d;
            e_dm1 = e_d;
            f_dm1 = f_d;
        }

        carry_h = next_h;
        carry_f = next_f;
        i0 += L;
    }

    Some(i32::from(best))
}

/// Adaptive-precision SIMD Smith-Waterman: byte pass first (double the
/// lanes of [`score`]), 16-bit re-run on overflow. `LB` is the byte
/// lane count and `LW` the word lane count of the same register width
/// (16/8 for Altivec-128, 32/16 for the 256-bit extension).
pub fn score_adaptive<const LB: usize, const LW: usize>(
    a: &[AminoAcid],
    b: &[AminoAcid],
    matrix: &SubstitutionMatrix,
    gaps: GapPenalties,
) -> i32 {
    match score_bytes::<LB>(a, b, matrix, gaps) {
        Some(s) => s,
        None => score::<LW>(a, b, matrix, gaps),
    }
}

#[cfg(test)]
mod byte_tests {
    use super::*;
    use crate::sw;
    use sapa_bioseq::Sequence;

    fn seq(s: &str) -> Vec<AminoAcid> {
        Sequence::from_str("t", s).unwrap().residues().to_vec()
    }

    fn bl62() -> SubstitutionMatrix {
        SubstitutionMatrix::blosum62()
    }

    #[test]
    fn byte_pass_matches_scalar_when_in_range() {
        let m = bl62();
        let g = GapPenalties::paper();
        let cases = [
            ("HEAGAWGHEE", "PAWHEAE"),
            ("MKVLAA", "MKVLAA"),
            ("MKWVTFISLLFLFSSAYS", "MKWVTFISLL"),
            ("AAAA", "WWWW"),
        ];
        for (x, y) in cases {
            let a = seq(x);
            let b = seq(y);
            let expect = sw::score(&a, &b, &m, g);
            assert_eq!(score_bytes::<16>(&a, &b, &m, g), Some(expect), "{x} vs {y}");
            assert_eq!(score_bytes::<32>(&a, &b, &m, g), Some(expect));
        }
    }

    #[test]
    fn byte_pass_overflows_on_long_identities() {
        // A long self-match exceeds 250 raw, forcing the fallback.
        let m = bl62();
        let g = GapPenalties::paper();
        let a = seq(&"MKWVTFISLL".repeat(8)); // self score ≈ 8 × 55
        assert_eq!(score_bytes::<16>(&a, &a, &m, g), None);
        // The adaptive wrapper still returns the exact score.
        let expect = sw::score(&a, &a, &m, g);
        assert_eq!(score_adaptive::<16, 8>(&a, &a, &m, g), expect);
    }

    #[test]
    fn adaptive_matches_scalar_both_regimes() {
        let m = bl62();
        let g = GapPenalties::paper();
        let short = seq("HEAGAWGHEE");
        let long = seq(&"ACDEFGHIKLMNPQRSTVWY".repeat(5));
        for (a, b) in [(&short, &short), (&long, &long), (&short, &long)] {
            assert_eq!(score_adaptive::<16, 8>(a, b, &m, g), sw::score(a, b, &m, g));
            assert_eq!(
                score_adaptive::<32, 16>(a, b, &m, g),
                sw::score(a, b, &m, g)
            );
        }
    }

    #[test]
    fn empty_inputs() {
        let m = bl62();
        let g = GapPenalties::paper();
        assert_eq!(score_bytes::<16>(&[], &seq("AC"), &m, g), Some(0));
    }
}
