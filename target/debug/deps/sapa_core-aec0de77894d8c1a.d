/root/repo/target/debug/deps/sapa_core-aec0de77894d8c1a.d: crates/core/src/lib.rs

/root/repo/target/debug/deps/sapa_core-aec0de77894d8c1a: crates/core/src/lib.rs

crates/core/src/lib.rs:
