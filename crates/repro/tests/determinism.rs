//! The parallel sweep engine must be invisible in the results: any
//! thread count produces byte-identical experiment output and equal
//! reports, for every workload.

use sapa_cpu::SimConfig;
use sapa_repro::context::{Context, Scale};
use sapa_repro::sweep::SweepSpec;
use sapa_workloads::Workload;

#[test]
fn parallel_sweep_output_is_byte_identical_to_serial() {
    let spec = {
        let mut s = SweepSpec::default();
        s.apply("width=4-way,8-way").unwrap();
        s.apply("mem=me1,meinf").unwrap();
        s
    };
    let serial = spec.run(&mut Context::new(Scale::Tiny));
    for threads in [2, 4] {
        let parallel = spec.run(&mut Context::with_threads(Scale::Tiny, threads));
        assert_eq!(serial, parallel, "threads={threads}");
    }
}

#[test]
fn every_workload_reports_identically_at_four_threads() {
    let grid: Vec<(Workload, SimConfig)> = Workload::ALL
        .into_iter()
        .map(|w| (w, SimConfig::four_way()))
        .collect();
    let mut serial = Context::new(Scale::Tiny);
    let mut parallel = Context::with_threads(Scale::Tiny, 4);
    serial.sim_batch(&grid);
    parallel.sim_batch(&grid);
    for (w, cfg) in &grid {
        let a = serial.sim(*w, cfg).clone();
        let b = parallel.sim(*w, cfg).clone();
        assert_eq!(a, b, "{w} diverged under parallel sweep");
        assert!(a.instructions > 0, "{w} simulated nothing");
    }
}
