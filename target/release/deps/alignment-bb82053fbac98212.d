/root/repo/target/release/deps/alignment-bb82053fbac98212.d: crates/bench/benches/alignment.rs

/root/repo/target/release/deps/alignment-bb82053fbac98212: crates/bench/benches/alignment.rs

crates/bench/benches/alignment.rs:
