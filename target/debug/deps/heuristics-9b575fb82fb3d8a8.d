/root/repo/target/debug/deps/heuristics-9b575fb82fb3d8a8.d: crates/bench/benches/heuristics.rs Cargo.toml

/root/repo/target/debug/deps/libheuristics-9b575fb82fb3d8a8.rmeta: crates/bench/benches/heuristics.rs Cargo.toml

crates/bench/benches/heuristics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
