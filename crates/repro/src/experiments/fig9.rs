//! Figure 9: IPC with the real (Table VI) vs a perfect branch
//! predictor, across widths.

use crate::context::Context;
use crate::format::{f2, heading, Table};
use sapa_cpu::config::{BranchConfig, MemConfig};
use sapa_workloads::Workload;

const WIDTHS: [&str; 3] = ["4-way", "8-way", "16-way"];

fn config_for(width: &str, perfect: bool) -> sapa_cpu::config::SimConfig {
    let branch = if perfect {
        BranchConfig::perfect()
    } else {
        BranchConfig::table_vi()
    };
    Context::config(width, &MemConfig::me1(), branch)
}

/// IPC of one point.
pub fn point(ctx: &mut Context, w: Workload, width: &str, perfect: bool) -> f64 {
    ctx.sim(w, &config_for(width, perfect)).ipc()
}

/// Renders Figure 9.
pub fn run(ctx: &mut Context) -> String {
    let mut out = heading("Figure 9 — perfect vs real branch predictor (IPC)");
    let points: Vec<_> = Workload::ALL
        .into_iter()
        .flat_map(|w| {
            WIDTHS.into_iter().flat_map(move |width| {
                [(w, config_for(width, false)), (w, config_for(width, true))]
            })
        })
        .collect();
    ctx.sim_batch(&points);
    let mut t = Table::new(&["workload", "width", "Real-BP", "Perfect-BP"]);
    for w in Workload::ALL {
        for width in WIDTHS {
            let real = point(ctx, w, width, false);
            let perfect = point(ctx, w, width, true);
            t.row_owned(vec![
                w.label().to_string(),
                width.to_string(),
                f2(real),
                f2(perfect),
            ]);
        }
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn perfect_bp_helps_branchy_codes_not_simd() {
        let mut ctx = Context::new(Scale::Tiny);
        let mut gain =
            |w: Workload| point(&mut ctx, w, "4-way", true) / point(&mut ctx, w, "4-way", false);
        let ssearch = gain(Workload::Ssearch34);
        let simd = gain(Workload::SwVmx128);
        assert!(ssearch > 1.05, "ssearch gain {ssearch}");
        assert!(simd < ssearch, "simd {simd} vs ssearch {ssearch}");
        assert!(simd < 1.10, "simd gain {simd}");
    }
}
