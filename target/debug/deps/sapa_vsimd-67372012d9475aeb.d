/root/repo/target/debug/deps/sapa_vsimd-67372012d9475aeb.d: crates/vsimd/src/lib.rs

/root/repo/target/debug/deps/sapa_vsimd-67372012d9475aeb: crates/vsimd/src/lib.rs

crates/vsimd/src/lib.rs:
