//! Database search over a prebuilt on-disk index: the BLAST-shaped
//! two-stage pipeline (seed prefilter → full rescore) running against
//! [`sapa_bioseq::index`] databases without ever materializing the
//! whole database in memory.
//!
//! The pipeline per request:
//!
//! 1. **Candidate generation** — [`Prefilter::Seed`] /
//!    [`Prefilter::SeedExtend`] run the query through the database's
//!    resident k-mer seed index: only subjects sharing a qualifying
//!    seed diagonal survive, plus every subject too short to carry a
//!    seed word (admitted unconditionally, so short-subject edge cases
//!    can never be silently lost). [`Prefilter::Off`] admits everyone —
//!    an exhaustive scan bit-identical in ranking to the in-memory
//!    path over the same (length-sorted) sequences.
//! 2. **Deadline resolution** — a [`Deadline::Cells`] budget is
//!    resolved *serially over the candidate list* using
//!    [`AlignmentEngine::cost_len`] on the on-disk length table, so
//!    partial responses stay deterministic at any thread count and no
//!    sequence data is decoded for subjects the budget rejects.
//! 3. **Shard-streamed rescore** — candidates are grouped by shard
//!    (contiguous in the length-sorted order, so every batch the
//!    striped kernels see has near-uniform subject lengths); each
//!    shard is checksum-verified, decoded into one reusable buffer,
//!    optionally gated through the X-drop extension, and scored by the
//!    engine through the same chunked work-claiming loop
//!    ([`crate::parallel::engine_scores`]) as in-memory scans —
//!    panic-quarantine included. Peak residue memory is one shard, not
//!    the database.
//!
//! Determinism: with [`Prefilter::Off`] or [`Prefilter::Seed`] and no
//! wall-clock deadline, the response (hits, stats, coverage) is a pure
//! function of the database bytes and the request — identical at any
//! thread count, and its ranked hits equal the exhaustive scan's for
//! every subject that shares at least one seed word with the query.
//! [`Prefilter::SeedExtend`] is a documented heuristic: its extension
//! gate can drop true hits whose optimal alignment avoids every seeded
//! diagonal.

use std::io::{Read, Seek};
use std::time::Instant;

use sapa_bioseq::index::{IndexReader, ShardBuf};
use sapa_bioseq::AminoAcid;

use crate::engine::{
    annotate_hits, AlignmentEngine, Deadline, DeadlineKind, Engine, Prefilter, Quarantined,
    RunStats, SearchRequest, SearchResponse,
};
use crate::parallel::{self, QUARANTINED_SCORE};
use crate::result::{Hit, TopK};
use crate::{stats, xdrop};

/// One subject admitted past the seed stage: its global (database
/// order) index and, when it was seeded, the first seed of its best
/// diagonal for the optional extension gate.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    seq: usize,
    seed: Option<(u32, u32)>,
}

/// Runs `req` through `engine` against the on-disk database behind
/// `db`. This is the generic worker behind [`Engine::search_indexed`];
/// call it directly to search with a non-registry
/// [`AlignmentEngine`].
///
/// Hit indices are database (length-sorted) sequence indices. The
/// response is score-only (`alignment: None`);
/// [`SearchRequest::report_alignments`] is ignored because subjects are
/// not resident once their shard buffer is reused.
///
/// # Errors
///
/// Propagates I/O errors and checksum/structure failures from the
/// reader.
///
/// # Panics
///
/// Panics if `threads` or `req.top_k` is 0.
pub fn search_reader<R: Read + Seek, E: AlignmentEngine>(
    id: Engine,
    engine: &E,
    req: &SearchRequest<'_>,
    db: &mut IndexReader<R>,
    threads: usize,
) -> sapa_bioseq::Result<SearchResponse> {
    assert!(threads > 0, "need at least one thread");
    let word_len = db.word_len();
    let seq_count = db.seq_count();

    // Stage 1: candidate generation. A query shorter than the indexed
    // word length has no seed words at all; pruning on their absence
    // would discard the whole database, so the prefilter disables
    // itself and the scan is exhaustive.
    let effective = match req.prefilter {
        Prefilter::Off => Prefilter::Off,
        p if req.query.len() < word_len => {
            debug_assert!(!matches!(p, Prefilter::Off));
            Prefilter::Off
        }
        p => p,
    };
    let mut candidates: Vec<Candidate> = match effective {
        Prefilter::Off => (0..seq_count)
            .map(|seq| Candidate { seq, seed: None })
            .collect(),
        Prefilter::Seed { min_diag_seeds } | Prefilter::SeedExtend { min_diag_seeds, .. } => {
            let scan = db.seed_index().candidates(req.query, min_diag_seeds);
            // Sequences shorter than the word length can never be
            // seeded; the length table is sorted ascending, so they
            // are exactly the database prefix below `word_len` — and
            // every seeded candidate's index lands past them, keeping
            // the concatenation sorted.
            let unseedable = db
                .lengths()
                .iter()
                .take_while(|&&l| (l as usize) < word_len)
                .count();
            let mut list: Vec<Candidate> = (0..unseedable)
                .map(|seq| Candidate { seq, seed: None })
                .collect();
            list.extend(scan.candidates.iter().map(|c| Candidate {
                seq: c.seq as usize,
                seed: Some((c.qpos, c.spos)),
            }));
            debug_assert!(list.windows(2).all(|w| w[0].seq < w[1].seq));
            list
        }
    };
    let pruned_seed = seq_count - candidates.len();

    // Stage 2: deadline resolution over the candidate list, from the
    // resident length table alone.
    let mut truncated_by: Option<DeadlineKind> = None;
    let wall = match req.deadline {
        None => None,
        Some(Deadline::Cells(budget)) => {
            let mut spent = 0u64;
            let mut admitted = 0usize;
            for c in &candidates {
                spent = spent.saturating_add(engine.cost_len(db.lengths()[c.seq] as usize));
                if spent > budget {
                    break;
                }
                admitted += 1;
            }
            if admitted < candidates.len() {
                truncated_by = Some(DeadlineKind::Cells);
                candidates.truncate(admitted);
            }
            None
        }
        Some(Deadline::Wall(d)) => Some(Instant::now() + d),
    };

    // Group candidates by shard; both sides are sorted, so one forward
    // walk tiles the list into contiguous per-shard runs.
    let mut groups: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
    {
        let shards = db.shards();
        let mut at = 0usize;
        for (shard_idx, info) in shards.iter().enumerate() {
            let end_seq = info.seq_start + info.seq_count;
            let start = at;
            while at < candidates.len() && candidates[at].seq < end_seq {
                at += 1;
            }
            if at > start {
                groups.push((shard_idx, start..at));
            }
        }
        debug_assert_eq!(at, candidates.len());
    }

    // Stage 3: stream shards, gate, rescore.
    let mut results = TopK::new(req.top_k);
    let mut quarantined: Vec<Quarantined> = Vec::new();
    let mut attempted = 0usize;
    let mut rescored = 0usize;
    let mut pruned_ext = 0usize;
    let mut buf = ShardBuf::new();
    for (shard_idx, range) in groups {
        // The wall-clock cutoff is checked between shards only: it is
        // best-effort (and explicitly non-deterministic) in the
        // in-memory path too, and a shard is the unit of I/O here.
        if wall.is_some_and(|w| Instant::now() >= w) {
            truncated_by = Some(DeadlineKind::Wall);
            break;
        }
        db.read_shard(shard_idx, &mut buf)?;
        let shard_start = db.shards()[shard_idx].seq_start;

        // Optional extension gate, then the surviving slice batch.
        let mut survivors: Vec<usize> = Vec::with_capacity(range.len());
        let mut slices: Vec<&[AminoAcid]> = Vec::with_capacity(range.len());
        for (pos, cand) in candidates[range.clone()].iter().enumerate() {
            let subject = buf.sequence(cand.seq - shard_start);
            if let Prefilter::SeedExtend {
                x, min_extended, ..
            } = effective
            {
                // Unseeded candidates are the too-short-to-seed
                // admissions; they bypass the gate by construction.
                if let Some((qpos, spos)) = cand.seed {
                    let ext = xdrop::extend_seed(
                        req.query,
                        subject,
                        req.matrix,
                        req.gaps,
                        qpos as usize,
                        spos as usize,
                        word_len,
                        x.max(0),
                    );
                    if ext < min_extended {
                        pruned_ext += 1;
                        continue;
                    }
                }
            }
            survivors.push(range.start + pos);
            slices.push(subject);
        }
        if slices.is_empty() {
            continue;
        }

        let (scores, shard_stats) = parallel::engine_scores(engine, &slices, threads);
        attempted += slices.len();
        rescored += shard_stats.rescored;
        for q in shard_stats.quarantined {
            quarantined.push(Quarantined {
                index: candidates[survivors[q.index]].seq,
                cause: q.cause,
            });
        }
        for (local, score) in scores.into_iter().enumerate() {
            if score == QUARANTINED_SCORE {
                continue;
            }
            if score >= req.min_score {
                results.push(Hit {
                    seq_index: candidates[survivors[local]].seq,
                    score,
                });
            }
        }
    }
    quarantined.sort_by_key(|q| q.index);

    let ka = stats::KarlinAltschul::for_gaps(req.gaps);
    let ranked = results.finish();
    let hits = annotate_hits(
        ranked.hits(),
        vec![None; ranked.hits().len()],
        &ka,
        req.query.len(),
        db.total_residues() as usize,
        seq_count,
    );
    let pruned = pruned_seed + pruned_ext;
    Ok(SearchResponse {
        engine: id,
        hits,
        stats: RunStats {
            subjects: attempted,
            rescored,
            threads,
            quarantined,
            pruned,
        },
        // A full prefiltered pass is a *complete* search under its
        // strategy: pruning is accounted in `stats.pruned`, not as
        // missing coverage. Only a deadline leaves the scan incomplete.
        completed: truncated_by.is_none(),
        truncated_by,
        coverage: attempted + pruned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StripedEngine;
    use sapa_bioseq::db::DatabaseBuilder;
    use sapa_bioseq::index::IndexBuilder;
    use sapa_bioseq::matrix::GapPenalties;
    use sapa_bioseq::queries::QuerySet;
    use sapa_bioseq::{Sequence, SubstitutionMatrix};
    use std::io::Cursor;

    fn test_db(seed: u64, n: usize, homologs: f64) -> Vec<Sequence> {
        let query = QuerySet::paper().default_query().clone();
        DatabaseBuilder::new()
            .seed(seed)
            .sequences(n)
            .homolog_template(query)
            .homolog_fraction(homologs)
            .build()
            .sequences()
            .to_vec()
    }

    fn reader_for(seqs: &[Sequence]) -> IndexReader<Cursor<Vec<u8>>> {
        let mut bytes = Vec::new();
        IndexBuilder::new()
            .shard_residues(8 * 1024)
            .write(seqs, &mut bytes)
            .unwrap();
        IndexReader::from_reader(Cursor::new(bytes)).unwrap()
    }

    fn request<'a>(
        query: &'a [AminoAcid],
        matrix: &'a SubstitutionMatrix,
        prefilter: Prefilter,
    ) -> SearchRequest<'a> {
        SearchRequest {
            query,
            matrix,
            gaps: GapPenalties::paper(),
            top_k: 50,
            // A significance-level cutoff: statistically insignificant
            // chance alignments (scores in the ~40s on this search
            // space) need not share any exact 5-mer with the query, so
            // ranking equivalence between the seed prefilter and the
            // exhaustive scan is asserted above that noise floor — the
            // regime every real report operates in.
            min_score: 60,
            deadline: None,
            report_alignments: false,
            prefilter,
        }
    }

    #[test]
    fn exhaustive_indexed_scan_matches_in_memory_search() {
        let seqs = test_db(41, 120, 0.05);
        let query = QuerySet::paper().default_query().clone();
        let m = SubstitutionMatrix::blosum62();
        let mut db = reader_for(&seqs);

        let req = request(query.residues(), &m, Prefilter::Off);
        let indexed = Engine::Striped.search_indexed(&req, &mut db, 2).unwrap();

        // In-memory reference over the same (length-sorted) order.
        let sorted = db.read_all().unwrap();
        let slices: Vec<&[AminoAcid]> = sorted.iter().map(|s| s.residues()).collect();
        let reference = Engine::Striped.search(&req, &slices, 2);

        assert_eq!(indexed.hits, reference.hits);
        assert_eq!(indexed.stats.subjects, seqs.len());
        assert_eq!(indexed.stats.pruned, 0);
        assert!(indexed.completed);
        assert_eq!(indexed.coverage, seqs.len());
    }

    #[test]
    fn seed_prefilter_prunes_without_losing_ranked_hits() {
        let seqs = test_db(43, 200, 0.04);
        let query = QuerySet::paper().default_query().clone();
        let m = SubstitutionMatrix::blosum62();
        let mut db = reader_for(&seqs);

        let off = request(query.residues(), &m, Prefilter::Off);
        let exhaustive = Engine::Striped.search_indexed(&off, &mut db, 1).unwrap();
        let seeded_req = request(query.residues(), &m, Prefilter::DEFAULT_SEED);
        let seeded = Engine::Striped
            .search_indexed(&seeded_req, &mut db, 1)
            .unwrap();

        assert!(seeded.stats.pruned > 0, "prefilter must prune something");
        assert_eq!(
            seeded.stats.subjects + seeded.stats.pruned,
            seqs.len(),
            "every subject is scored or pruned"
        );
        assert_eq!(
            seeded.hits, exhaustive.hits,
            "default seed prefilter must keep the exhaustive ranking"
        );
    }

    #[test]
    fn indexed_search_is_thread_count_invariant() {
        let seqs = test_db(47, 90, 0.1);
        let query = QuerySet::paper().default_query().clone();
        let m = SubstitutionMatrix::blosum62();
        let mut db = reader_for(&seqs);
        let req = request(query.residues(), &m, Prefilter::DEFAULT_SEED);

        let one = Engine::Striped.search_indexed(&req, &mut db, 1).unwrap();
        for threads in [2, 4] {
            let mut resp = Engine::Striped
                .search_indexed(&req, &mut db, threads)
                .unwrap();
            assert_eq!(resp.stats.threads, threads);
            resp.stats.threads = one.stats.threads;
            assert_eq!(resp, one, "threads={threads}");
        }
    }

    #[test]
    fn short_query_disables_the_prefilter() {
        let seqs = test_db(53, 40, 0.0);
        let m = SubstitutionMatrix::blosum62();
        let mut db = reader_for(&seqs);
        let short = Sequence::from_str("q", "MKW").unwrap(); // < word_len
        let req = request(short.residues(), &m, Prefilter::DEFAULT_SEED);
        let resp = Engine::Sw.search_indexed(&req, &mut db, 1).unwrap();
        assert_eq!(resp.stats.pruned, 0);
        assert_eq!(resp.stats.subjects, seqs.len());
    }

    #[test]
    fn cell_budget_is_deterministic_over_candidates() {
        let seqs = test_db(59, 60, 0.1);
        let query = QuerySet::paper().default_query().clone();
        let m = SubstitutionMatrix::blosum62();
        let mut db = reader_for(&seqs);

        // Exhaustive candidates so a quarter of the database cost is
        // guaranteed to cut the scan short.
        let full_req = request(query.residues(), &m, Prefilter::Off);
        let full = Engine::Sw.search_indexed(&full_req, &mut db, 1).unwrap();
        let total: u64 = db
            .lengths()
            .iter()
            .map(|&l| (query.len() * l as usize).max(1) as u64)
            .sum();
        let mut req = full_req;
        req.deadline = Some(Deadline::Cells(total / 4));
        let one = Engine::Sw.search_indexed(&req, &mut db, 1).unwrap();
        assert!(!one.completed);
        assert!(one.stats.subjects < full.stats.subjects);
        for threads in [2, 3] {
            let mut resp = Engine::Sw.search_indexed(&req, &mut db, threads).unwrap();
            resp.stats.threads = one.stats.threads;
            assert_eq!(resp, one, "threads={threads}");
        }
    }

    #[test]
    fn seed_extend_is_a_subset_of_the_exhaustive_ranking() {
        let seqs = test_db(61, 150, 0.06);
        let query = QuerySet::paper().default_query().clone();
        let m = SubstitutionMatrix::blosum62();
        let mut db = reader_for(&seqs);

        let off = request(query.residues(), &m, Prefilter::Off);
        let exhaustive = Engine::Striped.search_indexed(&off, &mut db, 1).unwrap();
        let ext_req = request(
            query.residues(),
            &m,
            Prefilter::SeedExtend {
                min_diag_seeds: 1,
                x: 20,
                min_extended: 25,
            },
        );
        let gated = Engine::Striped
            .search_indexed(&ext_req, &mut db, 1)
            .unwrap();

        assert!(gated.stats.pruned >= exhaustive.stats.pruned);
        let all: Vec<(usize, i32)> = exhaustive
            .hits
            .iter()
            .map(|h| (h.seq_index, h.score))
            .collect();
        for h in &gated.hits {
            assert!(
                all.contains(&(h.seq_index, h.score)),
                "SeedExtend produced a hit the exhaustive scan lacks"
            );
        }
        // Strong homologs must survive a loose gate.
        assert_eq!(gated.hits[0], exhaustive.hits[0]);
    }

    #[test]
    fn short_subjects_are_admitted_unconditionally() {
        let query = QuerySet::paper().default_query().clone();
        // A db with subjects shorter than the seed word length.
        let mut seqs = test_db(67, 30, 0.0);
        seqs.push(Sequence::from_str("tiny1", "MK").unwrap());
        seqs.push(Sequence::from_str("tiny2", "WYNA").unwrap());
        let m = SubstitutionMatrix::blosum62();
        let mut db = reader_for(&seqs);

        let mut req = request(query.residues(), &m, Prefilter::DEFAULT_SEED);
        req.min_score = 1;
        let resp = Engine::Sw.search_indexed(&req, &mut db, 1).unwrap();
        // The two tiny subjects sort first and must have been scored.
        assert!(resp.stats.subjects >= 2);
        assert_eq!(resp.stats.subjects + resp.stats.pruned, seqs.len());
    }

    #[test]
    fn direct_engine_search_reader_works_without_the_registry() {
        let seqs = test_db(71, 40, 0.1);
        let query = QuerySet::paper().default_query().clone();
        let m = SubstitutionMatrix::blosum62();
        let g = GapPenalties::paper();
        let mut db = reader_for(&seqs);
        let engine = StripedEngine::<16, 8>::from_query(query.residues(), &m, g);
        let req = request(query.residues(), &m, Prefilter::DEFAULT_SEED);
        let resp = search_reader(Engine::Striped, &engine, &req, &mut db, 2).unwrap();
        assert!(!resp.hits.is_empty());
        assert_eq!(resp.engine, Engine::Striped);
    }
}
