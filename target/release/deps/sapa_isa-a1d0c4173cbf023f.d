/root/repo/target/release/deps/sapa_isa-a1d0c4173cbf023f.d: crates/isa/src/lib.rs crates/isa/src/inst.rs crates/isa/src/mem.rs crates/isa/src/reg.rs crates/isa/src/stats.rs crates/isa/src/trace.rs crates/isa/src/validate.rs

/root/repo/target/release/deps/sapa_isa-a1d0c4173cbf023f: crates/isa/src/lib.rs crates/isa/src/inst.rs crates/isa/src/mem.rs crates/isa/src/reg.rs crates/isa/src/stats.rs crates/isa/src/trace.rs crates/isa/src/validate.rs

crates/isa/src/lib.rs:
crates/isa/src/inst.rs:
crates/isa/src/mem.rs:
crates/isa/src/reg.rs:
crates/isa/src/stats.rs:
crates/isa/src/trace.rs:
crates/isa/src/validate.rs:
