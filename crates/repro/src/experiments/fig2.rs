//! Figure 2: histogram of traumas (stall cycles per class) on the
//! 4-way / 32K / 32K / 1M configuration with the real branch predictor.

use crate::context::Context;
use crate::format::{heading, Table};
use sapa_cpu::Trauma;
use sapa_workloads::Workload;

/// Renders the per-workload trauma histograms (all 56 classes, Figure 2
/// x-axis order), plus a top-5 summary line per workload.
pub fn run(ctx: &mut Context) -> String {
    let mut out = heading("Figure 2 — stall cycles per trauma (4-way, 32K/32K/1M, real BP)");
    let baseline = sapa_cpu::SimConfig::four_way();
    let points: Vec<_> = Workload::ALL
        .into_iter()
        .map(|w| (w, baseline.clone()))
        .collect();
    ctx.sim_batch(&points);
    for w in Workload::ALL {
        let report = ctx.baseline(w).clone();
        let mut t = Table::new(&["trauma", "cycles"]);
        for (trauma, cycles) in report.traumas.rows() {
            t.row_owned(vec![trauma.label().to_string(), cycles.to_string()]);
        }
        let top: Vec<String> = report
            .traumas
            .top(5)
            .into_iter()
            .filter(|&(_, c)| c > 0)
            .map(|(tr, c)| format!("{}={}", tr.label(), c))
            .collect();
        let s = &report.structures;
        out.push_str(&format!(
            "\nSTALL CYCLES in {} (total cycles {}, top: {}):\n\
             structures: rename={} rs_full={} rob_full={} lq_full={} sq_full={} \
             replays={} replay_wait={}\n{}",
            w.label(),
            report.cycles,
            top.join(", "),
            s.rename_stalls,
            s.rs_full_stalls,
            s.rob_full_stalls,
            s.lq_full_stalls,
            s.sq_full_stalls,
            s.replays,
            s.replay_wait_cycles,
            t.render()
        ));
    }
    out
}

/// The dominant trauma of one workload at the baseline configuration —
/// used by tests and EXPERIMENTS.md to check the paper's headline
/// claims (RG_FIX/MM for BLAST, IF_PRED for SSEARCH/FASTA, RG_VI/
/// RG_VPER for the SIMD codes).
pub fn dominant(ctx: &mut Context, w: Workload) -> Trauma {
    ctx.baseline(w).traumas.top(1)[0].0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    // These assertions need warmed-up caches, so they run at Small
    // scale (Tiny traces are dominated by cold misses).

    #[test]
    fn simd_codes_blame_vector_dependencies() {
        let mut ctx = Context::new(Scale::Small);
        let d = dominant(&mut ctx, Workload::SwVmx128);
        assert!(
            matches!(d, Trauma::RgVi | Trauma::RgVper | Trauma::RgMem),
            "vmx128 dominant trauma {d}"
        );
    }

    #[test]
    fn branchy_codes_blame_the_frontend_or_int_deps() {
        let mut ctx = Context::new(Scale::Small);
        for w in [Workload::Ssearch34, Workload::Fasta34] {
            let d = dominant(&mut ctx, w);
            assert!(
                matches!(
                    d,
                    Trauma::IfPred | Trauma::RgFix | Trauma::RgMem | Trauma::Decode
                ),
                "{w} dominant trauma {d}"
            );
        }
    }
}
