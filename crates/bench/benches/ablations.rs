//! Design-choice ablations called out in DESIGN.md: lazy-F on/off,
//! one-hit vs two-hit BLAST, FASTA ktup 1 vs 2, SIMD lane width, and
//! scoring-matrix scaling.

use sapa_bench::harness::{BenchmarkId, Criterion};
use sapa_bench::{bench_db, bench_query, criterion_group, criterion_main, slices};
use sapa_core::align::{banded, blast, blastn, fasta, simd_sw, sw, xdrop};
use sapa_core::bioseq::dna::random_dna;
use sapa_core::bioseq::matrix::GapPenalties;
use sapa_core::bioseq::SubstitutionMatrix;

fn lazy_f_ablation(c: &mut Criterion) {
    let matrix = SubstitutionMatrix::blosum62();
    let gaps = GapPenalties::paper();
    let query = bench_query();
    let db = bench_db(4);
    let subject = db[0].residues();

    let mut group = c.benchmark_group("ablation_lazy_f");
    group.bench_function("textbook_gotoh", |b| {
        b.iter(|| sw::score(query.residues(), subject, &matrix, gaps))
    });
    group.bench_function("lazy_f", |b| {
        b.iter(|| sw::score_lazy_f(query.residues(), subject, &matrix, gaps))
    });
    group.finish();
}

fn blast_seeding_ablation(c: &mut Criterion) {
    let matrix = SubstitutionMatrix::blosum62();
    let gaps = GapPenalties::paper();
    let query = bench_query();
    let db = bench_db(60);
    let widx = blast::WordIndex::build(query.residues(), &matrix, 11);

    let mut group = c.benchmark_group("ablation_blast_seeding");
    for (name, one_hit) in [("two_hit", false), ("one_hit", true)] {
        let params = blast::BlastParams {
            one_hit,
            ..blast::BlastParams::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &params, |b, p| {
            b.iter(|| blast::search(&widx, slices(&db), &matrix, gaps, p, 500))
        });
    }
    // Threshold sweep: index size vs scan cost.
    for t in [10, 11, 12, 13] {
        let idx = blast::WordIndex::build(query.residues(), &matrix, t);
        group.bench_with_input(BenchmarkId::new("threshold", t), &idx, |b, idx| {
            b.iter(|| {
                blast::search(
                    idx,
                    slices(&db),
                    &matrix,
                    gaps,
                    &blast::BlastParams::default(),
                    500,
                )
            })
        });
    }
    group.finish();
}

fn fasta_ktup_ablation(c: &mut Criterion) {
    let matrix = SubstitutionMatrix::blosum62();
    let gaps = GapPenalties::paper();
    let query = bench_query();
    let db = bench_db(60);

    let mut group = c.benchmark_group("ablation_fasta_ktup");
    for ktup in [1usize, 2] {
        let idx = fasta::KtupIndex::build(query.residues(), ktup);
        let params = fasta::FastaParams {
            ktup,
            ..fasta::FastaParams::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(ktup), &idx, |b, idx| {
            b.iter(|| fasta::search(idx, slices(&db), &matrix, gaps, &params, 500))
        });
    }
    group.finish();
}

fn simd_width_ablation(c: &mut Criterion) {
    let matrix = SubstitutionMatrix::blosum62();
    let gaps = GapPenalties::paper();
    let query = bench_query();
    let db = bench_db(4);
    let subject = db[0].residues();

    let mut group = c.benchmark_group("ablation_simd_lane_width");
    group.bench_function("lanes_4", |b| {
        b.iter(|| simd_sw::score::<4>(query.residues(), subject, &matrix, gaps))
    });
    group.bench_function("lanes_8_vmx128", |b| {
        b.iter(|| simd_sw::score::<8>(query.residues(), subject, &matrix, gaps))
    });
    group.bench_function("lanes_16_vmx256", |b| {
        b.iter(|| simd_sw::score::<16>(query.residues(), subject, &matrix, gaps))
    });
    group.bench_function("lanes_32", |b| {
        b.iter(|| simd_sw::score::<32>(query.residues(), subject, &matrix, gaps))
    });
    group.finish();
}

fn matrix_ablation(c: &mut Criterion) {
    let gaps = GapPenalties::paper();
    let query = bench_query();
    let db = bench_db(4);
    let subject = db[0].residues();

    let mut group = c.benchmark_group("ablation_matrix");
    for (name, matrix) in [
        ("blosum62", SubstitutionMatrix::blosum62()),
        ("blosum62_x2", SubstitutionMatrix::blosum62_scaled(2, 1)),
        ("uniform_5_-4", SubstitutionMatrix::uniform(5, -4)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &matrix, |b, m| {
            b.iter(|| sw::score_lazy_f(query.residues(), subject, m, gaps))
        });
    }
    group.finish();
}

fn gapped_rescoring_ablation(c: &mut Criterion) {
    // BLAST's gapped stage: fixed-band rescoring (our default) vs the
    // adaptive X-drop extension real NCBI BLAST uses.
    let matrix = SubstitutionMatrix::blosum62();
    let gaps = GapPenalties::paper();
    let query = bench_query();
    let db = bench_db(4);
    let subject = db[0].residues();

    let mut group = c.benchmark_group("ablation_gapped_rescoring");
    group.bench_function("banded_w24", |b| {
        b.iter(|| banded::score(query.residues(), subject, &matrix, gaps, 0, 24))
    });
    group.bench_function("xdrop_38", |b| {
        b.iter(|| xdrop::extend_seed(query.residues(), subject, &matrix, gaps, 0, 0, 3, 38))
    });
    group.finish();
}

fn blastn_search(c: &mut Criterion) {
    // The nucleotide pipeline of the paper's Listing 1.
    let q = random_dna("q", 200, 1);
    let mut subjects = Vec::new();
    for k in 0..50u64 {
        subjects.push(random_dna("s", 2_000, 50 + k).pack());
    }
    // Plant the query into one subject for a realistic hit path.
    let mut hit = random_dna("h", 2_000, 999).bases().to_vec();
    hit[500..700].copy_from_slice(q.bases());
    subjects.push(sapa_core::bioseq::dna::DnaSequence::new("hit", hit).pack());

    let idx = blastn::NtWordIndex::build(&q, 11);
    let mut group = c.benchmark_group("blastn");
    group.bench_function("search_51x2kb", |b| {
        b.iter(|| blastn::search(&idx, subjects.iter(), &blastn::BlastnParams::default(), 50))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = lazy_f_ablation, blast_seeding_ablation, fasta_ktup_ablation,
        simd_width_ablation, matrix_ablation, gapped_rescoring_ablation, blastn_search
}
criterion_main!(benches);
