//! End-to-end tests for the on-disk database path: `dbbuild`-style
//! index construction to a real file, `IndexReader::open`, and
//! `Engine::search_indexed` across every exact engine, with and
//! without the k-mer seed prefilter.

use sapa_core::align::engine::{Engine, Prefilter, SearchRequest, SearchResponse};
use sapa_core::bioseq::db::DatabaseBuilder;
use sapa_core::bioseq::index::{IndexBuilder, IndexReader, DEFAULT_WORD_LEN};
use sapa_core::bioseq::matrix::GapPenalties;
use sapa_core::bioseq::queries::QuerySet;
use sapa_core::bioseq::{AminoAcid, Sequence, SubstitutionMatrix};

fn corpus(seed: u64, n: usize) -> Vec<Sequence> {
    let query = QuerySet::paper().default_query().clone();
    DatabaseBuilder::new()
        .seed(seed)
        .sequences(n)
        .homolog_template(query)
        .homolog_fraction(0.05)
        .build()
        .sequences()
        .to_vec()
}

/// Writes `seqs` to a throwaway index file and opens it, exercising
/// the same file-backed path `protein_search --db` uses.
fn open_on_disk(name: &str, seqs: &[Sequence]) -> IndexReader<std::io::BufReader<std::fs::File>> {
    let dir = std::env::temp_dir().join("sapa_db_search_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    IndexBuilder::new()
        .shard_residues(16 * 1024)
        .write_file(seqs, &path)
        .unwrap();
    IndexReader::open(&path).unwrap()
}

fn request<'a>(
    query: &'a [AminoAcid],
    matrix: &'a SubstitutionMatrix,
    prefilter: Prefilter,
) -> SearchRequest<'a> {
    SearchRequest {
        query,
        matrix,
        gaps: GapPenalties::paper(),
        top_k: 50,
        // Equivalence between the seed prefilter and the exhaustive
        // scan is asserted above the chance-alignment noise floor;
        // see the rationale in `sapa_align::indexed`.
        min_score: 60,
        deadline: None,
        report_alignments: false,
        prefilter,
    }
}

/// Every exact engine must produce the identical ranked hit list on
/// the file-backed indexed path: exhaustive matches the in-memory
/// reference, and the default seed prefilter matches exhaustive.
#[test]
fn every_exact_engine_agrees_on_disk_with_and_without_prefilter() {
    let seqs = corpus(71, 150);
    let query = QuerySet::paper().default_query().clone();
    let m = SubstitutionMatrix::blosum62();
    let mut db = open_on_disk("exact_engines.sapadb", &seqs);

    // In-memory reference over the reader's own (length-sorted) order.
    let sorted = db.read_all().unwrap();
    let slices: Vec<&[AminoAcid]> = sorted.iter().map(|s| s.residues()).collect();
    let off = request(query.residues(), &m, Prefilter::Off);
    let reference = Engine::Striped.search(&off, &slices, 1);
    assert!(
        !reference.hits.is_empty(),
        "corpus must contain significant hits"
    );

    for engine in Engine::ALL {
        if !engine.is_exact() {
            continue;
        }
        let exhaustive = engine.search_indexed(&off, &mut db, 1).unwrap();
        assert_eq!(
            exhaustive.hits,
            reference.hits,
            "{} exhaustive indexed scan differs from in-memory striped",
            engine.name()
        );

        let seeded_req = request(query.residues(), &m, Prefilter::DEFAULT_SEED);
        let seeded = engine.search_indexed(&seeded_req, &mut db, 1).unwrap();
        assert!(
            seeded.stats.pruned > 0,
            "{} prefilter must prune on this corpus",
            engine.name()
        );
        assert_eq!(
            seeded.hits,
            exhaustive.hits,
            "{} seed prefilter lost ranked hits",
            engine.name()
        );
    }
}

/// Subjects shorter than the seed word length can never share a word
/// with the query; the prefilter must admit them unconditionally
/// rather than silently drop them.
#[test]
fn short_subjects_survive_the_prefilter_on_disk() {
    let mut seqs = corpus(73, 60);
    // Plant a perfect short match for a short probe query.
    seqs.push(Sequence::from_str("tiny1", "MKW").unwrap());
    seqs.push(Sequence::from_str("tiny2", "WWWW").unwrap());
    let mut db = open_on_disk("short_subjects.sapadb", &seqs);
    assert!(
        (db.lengths()[0] as usize) < DEFAULT_WORD_LEN,
        "length-sorted order must put the short subjects first"
    );

    let query = QuerySet::paper().default_query().clone();
    let m = SubstitutionMatrix::blosum62();
    let mut req = request(query.residues(), &m, Prefilter::DEFAULT_SEED);
    req.min_score = 1; // count everything, even tiny scores
    let resp = Engine::Sw.search_indexed(&req, &mut db, 1).unwrap();
    // The short subjects were scored (attempted), not pruned.
    assert_eq!(
        resp.stats.subjects + resp.stats.pruned,
        seqs.len(),
        "every subject is scored or pruned"
    );
    assert!(resp.stats.subjects >= 2, "short subjects must be admitted");
}

/// The x-drop gated `SeedExtend` prefilter is a documented heuristic:
/// it may drop hits, but whatever it reports must be a subset of the
/// exhaustive ranking with identical scores.
#[test]
fn seed_extend_reports_a_subset_of_the_exhaustive_ranking() {
    let seqs = corpus(79, 150);
    let query = QuerySet::paper().default_query().clone();
    let m = SubstitutionMatrix::blosum62();
    let mut db = open_on_disk("seed_extend.sapadb", &seqs);

    let off = request(query.residues(), &m, Prefilter::Off);
    let exhaustive = Engine::Striped.search_indexed(&off, &mut db, 1).unwrap();
    let ext_req = request(
        query.residues(),
        &m,
        Prefilter::SeedExtend {
            min_diag_seeds: 1,
            x: 20,
            min_extended: 15,
        },
    );
    let extended = Engine::Striped
        .search_indexed(&ext_req, &mut db, 1)
        .unwrap();

    let mut exhaustive_iter = exhaustive.hits.iter();
    for hit in &extended.hits {
        assert!(
            exhaustive_iter.any(|h| h == hit),
            "SeedExtend produced a hit absent from the exhaustive ranking: {hit:?}"
        );
    }
    assert!(extended.stats.pruned >= exhaustive.stats.pruned);
}

/// The indexed path must be bit-for-bit deterministic in the worker
/// thread count, like the in-memory pipeline.
#[test]
fn indexed_file_search_is_thread_count_invariant() {
    let seqs = corpus(83, 100);
    let query = QuerySet::paper().default_query().clone();
    let m = SubstitutionMatrix::blosum62();
    let mut db = open_on_disk("threads.sapadb", &seqs);
    let req = request(query.residues(), &m, Prefilter::DEFAULT_SEED);

    let one = Engine::Vmx128.search_indexed(&req, &mut db, 1).unwrap();
    for threads in [2, 3] {
        let mut resp: SearchResponse = Engine::Vmx128
            .search_indexed(&req, &mut db, threads)
            .unwrap();
        assert_eq!(resp.stats.threads, threads);
        resp.stats.threads = one.stats.threads;
        assert_eq!(resp, one, "threads={threads}");
    }
}

/// Two builds of the same corpus are byte-identical, and the reported
/// survival statistics add up: scored + pruned = database size.
#[test]
fn build_is_deterministic_and_survival_accounting_is_closed() {
    let seqs = corpus(89, 80);
    let mut a = Vec::new();
    let mut b = Vec::new();
    IndexBuilder::new().write(&seqs, &mut a).unwrap();
    IndexBuilder::new().write(&seqs, &mut b).unwrap();
    assert_eq!(a, b, "index bytes must be deterministic");

    let query = QuerySet::paper().default_query().clone();
    let m = SubstitutionMatrix::blosum62();
    let mut db = open_on_disk("accounting.sapadb", &seqs);
    let req = request(query.residues(), &m, Prefilter::DEFAULT_SEED);
    let resp = Engine::Striped.search_indexed(&req, &mut db, 2).unwrap();
    assert_eq!(resp.stats.subjects + resp.stats.pruned, seqs.len());
    assert_eq!(resp.coverage, seqs.len());
    assert!(resp.completed);
}
