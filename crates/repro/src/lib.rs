//! The experiment harness: every table and figure of the paper as a
//! runnable, deterministic experiment.
//!
//! Each experiment lives in [`experiments`] and renders its result as
//! plain text (the same rows/series the paper plots). The `repro`
//! binary dispatches on experiment ids (`table1` … `fig11`, `all`).
//!
//! ```
//! use sapa_repro::context::{Context, Scale};
//! use sapa_repro::experiments;
//!
//! let mut ctx = Context::new(Scale::Tiny);
//! let out = experiments::table3::run(&mut ctx);
//! assert!(out.contains("SSEARCH34"));
//! ```

pub mod context;
pub mod experiments;
pub mod format;
pub mod sweep;
