//! Service counters and the accounting invariant.
//!
//! Every *valid* search frame the server accepts off a socket lands in
//! exactly one of three buckets, and the CI smoke gate enforces the sum:
//!
//! ```text
//! submitted == served_clean + rejected() + quarantined_requests
//! ```
//!
//! * `served_clean` — admitted, executed, and answered with a result
//!   whose scan quarantined nothing (the response may still be
//!   *partial* under a deadline; `partial` counts those separately).
//! * `rejected()` — refused before execution: admission control
//!   (`rejected_overloaded`), tenant quota (`rejected_throttled`), or
//!   shutdown (`rejected_unavailable`).
//! * `quarantined_requests` — executed but touched by a fault: the
//!   response carries at least one quarantined subject, or the whole
//!   request panicked (`request_panics` ⊆ this bucket) and was answered
//!   with a typed `internal` error.
//!
//! Malformed/oversized frames are *not* submissions; they count under
//! `protocol_errors` (and `oversized`). Delivery failures after
//! execution (`write_failures`, client gone) do not move a request out
//! of its bucket — accounting tracks execution, not delivery.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::json::Json;

/// Live atomic counters, shared by every connection and worker thread.
#[derive(Debug, Default)]
pub struct Counters {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Complete frames (lines) received.
    pub frames: AtomicU64,
    /// Frames answered with `malformed`/`oversized`/`bad_query`/
    /// `unknown_engine` before becoming a submission.
    pub protocol_errors: AtomicU64,
    /// Frames that overran the line limit (also in `protocol_errors`).
    pub oversized: AtomicU64,
    /// Valid search frames accepted for accounting.
    pub submitted: AtomicU64,
    /// Searches answered with a fault-free result.
    pub served_clean: AtomicU64,
    /// Searches refused by the admission gate.
    pub rejected_overloaded: AtomicU64,
    /// Searches refused by a tenant token bucket.
    pub rejected_throttled: AtomicU64,
    /// Searches refused because shutdown had begun.
    pub rejected_unavailable: AtomicU64,
    /// Searches whose execution was touched by a fault (subject
    /// quarantine or request panic).
    pub quarantined_requests: AtomicU64,
    /// Total subjects quarantined across all searches.
    pub quarantined_subjects: AtomicU64,
    /// Whole-request panics (a subset of `quarantined_requests`).
    pub request_panics: AtomicU64,
    /// Results returned with `completed == false` (deadline cut).
    pub partial: AtomicU64,
    /// Responses that could not be written back (client vanished).
    pub write_failures: AtomicU64,
}

impl Counters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to a counter (relaxed; counters are statistical, the
    /// accounting invariant is enforced at quiescence).
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments a counter by one.
    pub fn inc(counter: &AtomicU64) {
        Self::add(counter, 1);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            connections: self.connections.load(Ordering::Relaxed),
            frames: self.frames.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            oversized: self.oversized.load(Ordering::Relaxed),
            submitted: self.submitted.load(Ordering::Relaxed),
            served_clean: self.served_clean.load(Ordering::Relaxed),
            rejected_overloaded: self.rejected_overloaded.load(Ordering::Relaxed),
            rejected_throttled: self.rejected_throttled.load(Ordering::Relaxed),
            rejected_unavailable: self.rejected_unavailable.load(Ordering::Relaxed),
            quarantined_requests: self.quarantined_requests.load(Ordering::Relaxed),
            quarantined_subjects: self.quarantined_subjects.load(Ordering::Relaxed),
            request_panics: self.request_panics.load(Ordering::Relaxed),
            partial: self.partial.load(Ordering::Relaxed),
            write_failures: self.write_failures.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the service counters (plain integers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// See [`Counters::connections`].
    pub connections: u64,
    /// See [`Counters::frames`].
    pub frames: u64,
    /// See [`Counters::protocol_errors`].
    pub protocol_errors: u64,
    /// See [`Counters::oversized`].
    pub oversized: u64,
    /// See [`Counters::submitted`].
    pub submitted: u64,
    /// See [`Counters::served_clean`].
    pub served_clean: u64,
    /// See [`Counters::rejected_overloaded`].
    pub rejected_overloaded: u64,
    /// See [`Counters::rejected_throttled`].
    pub rejected_throttled: u64,
    /// See [`Counters::rejected_unavailable`].
    pub rejected_unavailable: u64,
    /// See [`Counters::quarantined_requests`].
    pub quarantined_requests: u64,
    /// See [`Counters::quarantined_subjects`].
    pub quarantined_subjects: u64,
    /// See [`Counters::request_panics`].
    pub request_panics: u64,
    /// See [`Counters::partial`].
    pub partial: u64,
    /// See [`Counters::write_failures`].
    pub write_failures: u64,
}

impl Snapshot {
    /// Total searches refused before execution.
    pub fn rejected(&self) -> u64 {
        self.rejected_overloaded + self.rejected_throttled + self.rejected_unavailable
    }

    /// Whether the accounting invariant holds:
    /// `submitted == served_clean + rejected() + quarantined_requests`.
    /// Only meaningful at quiescence (no requests in flight).
    pub fn balances(&self) -> bool {
        self.submitted == self.served_clean + self.rejected() + self.quarantined_requests
    }

    /// Renders every counter (plus the derived sums) as a JSON object,
    /// the payload of the `stats` op and of the bench reports.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("connections", Json::num_u64(self.connections)),
            ("frames", Json::num_u64(self.frames)),
            ("protocol_errors", Json::num_u64(self.protocol_errors)),
            ("oversized", Json::num_u64(self.oversized)),
            ("submitted", Json::num_u64(self.submitted)),
            ("served_clean", Json::num_u64(self.served_clean)),
            (
                "rejected_overloaded",
                Json::num_u64(self.rejected_overloaded),
            ),
            ("rejected_throttled", Json::num_u64(self.rejected_throttled)),
            (
                "rejected_unavailable",
                Json::num_u64(self.rejected_unavailable),
            ),
            ("rejected", Json::num_u64(self.rejected())),
            (
                "quarantined_requests",
                Json::num_u64(self.quarantined_requests),
            ),
            (
                "quarantined_subjects",
                Json::num_u64(self.quarantined_subjects),
            ),
            ("request_panics", Json::num_u64(self.request_panics)),
            ("partial", Json::num_u64(self.partial)),
            ("write_failures", Json::num_u64(self.write_failures)),
            ("balances", Json::Bool(self.balances())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_balances_and_renders() {
        let c = Counters::new();
        Counters::add(&c.submitted, 10);
        Counters::add(&c.served_clean, 6);
        Counters::add(&c.rejected_overloaded, 2);
        Counters::add(&c.rejected_throttled, 1);
        Counters::inc(&c.quarantined_requests);
        Counters::add(&c.quarantined_subjects, 3);
        let s = c.snapshot();
        assert_eq!(s.rejected(), 3);
        assert!(s.balances());
        let j = s.to_json();
        assert_eq!(j.get("submitted").and_then(Json::as_u64), Some(10));
        assert_eq!(j.get("rejected").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("balances").and_then(Json::as_bool), Some(true));

        Counters::inc(&c.submitted);
        assert!(!c.snapshot().balances(), "an unaccounted submission trips");
    }
}
