//! Shared experiment state: inputs, cached traces, cached simulations.

use std::collections::HashMap;

use sapa_cpu::config::{BranchConfig, MemConfig, SimConfig};
use sapa_cpu::{SimReport, Simulator};
use sapa_isa::trace::Trace;
use sapa_workloads::{StandardInputs, Workload};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Minimal inputs for unit tests (seconds for the whole suite).
    Tiny,
    /// Reduced inputs for a quick look.
    Small,
    /// The suite's standard scale (the numbers in EXPERIMENTS.md).
    Paper,
}

impl Scale {
    fn inputs(self) -> StandardInputs {
        match self {
            Scale::Tiny => StandardInputs::with_db_size(12, 1),
            Scale::Small => StandardInputs::with_db_size(100, 2),
            Scale::Paper => StandardInputs::paper_scale(),
        }
    }
}

/// Key identifying a cached simulation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SimKey {
    workload: Workload,
    tag: String,
}

/// Shared state across experiments: one set of inputs, lazily generated
/// traces, and memoized simulator runs (figures 3 and 4 share a grid,
/// figure 2 and 10 share the baseline run, …).
pub struct Context {
    /// The evaluation inputs.
    pub inputs: StandardInputs,
    scale: Scale,
    traces: HashMap<Workload, Trace>,
    sims: HashMap<SimKey, SimReport>,
}

impl Context {
    /// Creates a context at the given scale.
    pub fn new(scale: Scale) -> Self {
        Context {
            inputs: scale.inputs(),
            scale,
            traces: HashMap::new(),
            sims: HashMap::new(),
        }
    }

    /// The context's scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The trace of `workload`, generated on first use.
    pub fn trace(&mut self, workload: Workload) -> &Trace {
        if !self.traces.contains_key(&workload) {
            let bundle = workload.trace(&self.inputs);
            self.traces.insert(workload, bundle.trace);
        }
        &self.traces[&workload]
    }

    /// Simulates `workload` under `cfg`, memoized by `tag` (callers
    /// pass a string that uniquely identifies the configuration, e.g.
    /// `"4-way/me1/real"`).
    pub fn sim(&mut self, workload: Workload, tag: &str, cfg: &SimConfig) -> &SimReport {
        let key = SimKey {
            workload,
            tag: tag.to_string(),
        };
        if !self.sims.contains_key(&key) {
            // Generate the trace first (separate borrow scope).
            self.trace(workload);
            let trace = &self.traces[&workload];
            let report = Simulator::new(cfg.clone()).run(trace);
            self.sims.insert(key.clone(), report);
        }
        &self.sims[&key]
    }

    /// The paper's baseline measurement configuration: 4-way, `me1`
    /// memory, Table VI (real) branch predictor.
    pub fn baseline(&mut self, workload: Workload) -> &SimReport {
        let cfg = SimConfig::four_way();
        self.sim(workload, "4-way/me1/real", &cfg)
    }

    /// Builds a [`SimConfig`] from named width and memory preset.
    ///
    /// # Panics
    ///
    /// Panics on an unknown width or memory name (internal use only).
    pub fn config(width: &str, mem: &MemConfig, branch: BranchConfig) -> SimConfig {
        let cpu = match width {
            "4-way" => sapa_cpu::config::CpuConfig::four_way(),
            "8-way" => sapa_cpu::config::CpuConfig::eight_way(),
            "12-way" => sapa_cpu::config::CpuConfig::twelve_way(),
            "16-way" => sapa_cpu::config::CpuConfig::sixteen_way(),
            other => panic!("unknown width preset {other}"),
        };
        SimConfig {
            cpu,
            mem: mem.clone(),
            branch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_cached() {
        let mut ctx = Context::new(Scale::Tiny);
        let a = ctx.trace(Workload::Blast).len();
        let b = ctx.trace(Workload::Blast).len();
        assert_eq!(a, b);
        assert_eq!(ctx.traces.len(), 1);
    }

    #[test]
    fn sims_are_memoized() {
        let mut ctx = Context::new(Scale::Tiny);
        let cfg = SimConfig::four_way();
        let c1 = ctx.sim(Workload::Blast, "t", &cfg).cycles;
        let c2 = ctx.sim(Workload::Blast, "t", &cfg).cycles;
        assert_eq!(c1, c2);
        assert_eq!(ctx.sims.len(), 1);
    }
}
