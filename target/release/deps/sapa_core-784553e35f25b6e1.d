/root/repo/target/release/deps/sapa_core-784553e35f25b6e1.d: crates/core/src/lib.rs

/root/repo/target/release/deps/sapa_core-784553e35f25b6e1: crates/core/src/lib.rs

crates/core/src/lib.rs:
