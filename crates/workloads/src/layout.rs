//! Shared data-structure layout for the instrumented workloads.
//!
//! All five applications read the database sequences from one
//! contiguous byte region (one byte per residue, as the FASTA/BLAST
//! tool family stores unpacked protein data), so the streaming access
//! pattern of the scan loops is realistic. Each workload then lays its
//! own private structures (query profile, H/E arrays, word index, …)
//! behind it in the simulated address space.

use sapa_bioseq::{AminoAcid, Sequence};
use sapa_isa::mem::{AddressSpace, Region};

/// The database image: residue bytes of every subject laid out
/// back-to-back, plus per-sequence offsets.
#[derive(Debug, Clone)]
pub struct DbImage {
    /// Region holding the residue bytes.
    pub region: Region,
    /// Byte offset of each sequence within the region.
    pub offsets: Vec<u32>,
    /// Length of each sequence.
    pub lengths: Vec<u32>,
    /// Residues of every sequence, concatenated (index space matches
    /// `offsets`/`lengths`).
    pub residues: Vec<AminoAcid>,
}

impl DbImage {
    /// Lays `subjects` out in `space`.
    ///
    /// # Panics
    ///
    /// Panics if the address space is exhausted (the suite's databases
    /// are far below the 32-bit limit).
    pub fn build(space: &mut AddressSpace, subjects: &[Sequence]) -> Self {
        let total: usize = subjects.iter().map(Sequence::len).sum();
        let region = space
            .alloc("db_residues", total.max(1) as u64, 128)
            .expect("database fits the simulated address space");
        let mut offsets = Vec::with_capacity(subjects.len());
        let mut lengths = Vec::with_capacity(subjects.len());
        let mut residues = Vec::with_capacity(total);
        let mut off = 0u32;
        for s in subjects {
            offsets.push(off);
            lengths.push(s.len() as u32);
            residues.extend(s.iter());
            off += s.len() as u32;
        }
        DbImage {
            region,
            offsets,
            lengths,
            residues,
        }
    }

    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Whether the image holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// The residues of sequence `i`.
    pub fn subject(&self, i: usize) -> &[AminoAcid] {
        let off = self.offsets[i] as usize;
        let len = self.lengths[i] as usize;
        &self.residues[off..off + len]
    }

    /// Simulated address of residue `j` of sequence `i`.
    #[inline]
    pub fn residue_addr(&self, i: usize, j: usize) -> u32 {
        self.region.addr(self.offsets[i] + j as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapa_bioseq::Sequence;

    fn seqs() -> Vec<Sequence> {
        vec![
            Sequence::from_str("a", "MKVL").unwrap(),
            Sequence::from_str("b", "WW").unwrap(),
            Sequence::from_str("c", "ACDEFG").unwrap(),
        ]
    }

    #[test]
    fn offsets_and_subjects() {
        let mut space = AddressSpace::new();
        let img = DbImage::build(&mut space, &seqs());
        assert_eq!(img.len(), 3);
        assert_eq!(img.offsets, vec![0, 4, 6]);
        assert_eq!(img.subject(1).len(), 2);
        assert_eq!(
            img.subject(2),
            Sequence::from_str("c", "ACDEFG").unwrap().residues()
        );
    }

    #[test]
    fn residue_addresses_are_contiguous() {
        let mut space = AddressSpace::new();
        let img = DbImage::build(&mut space, &seqs());
        assert_eq!(img.residue_addr(0, 1), img.residue_addr(0, 0) + 1);
        assert_eq!(img.residue_addr(1, 0), img.residue_addr(0, 0) + 4);
    }

    #[test]
    fn empty_database_is_safe() {
        let mut space = AddressSpace::new();
        let img = DbImage::build(&mut space, &[]);
        assert!(img.is_empty());
    }
}
