//! The 24-symbol NCBI protein alphabet.
//!
//! The twenty standard amino acids plus the ambiguity codes `B`
//! (Asx = Asn/Asp), `Z` (Glx = Gln/Glu), `X` (any) and the stop/gap
//! sentinel `*`. The numeric encoding (0..=23) matches the row/column
//! order of the embedded BLOSUM matrices.

/// One residue of a protein sequence.
///
/// The discriminant values are stable and are used directly as indices
/// into [`crate::matrix::SubstitutionMatrix`] rows, database word hashes,
/// and the BLAST neighborhood index.
///
/// ```
/// use sapa_bioseq::AminoAcid;
/// assert_eq!(AminoAcid::from_char('A'), Some(AminoAcid::Ala));
/// assert_eq!(AminoAcid::Ala.to_char(), 'A');
/// assert_eq!(AminoAcid::Ala.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum AminoAcid {
    /// Alanine (A)
    Ala = 0,
    /// Arginine (R)
    Arg = 1,
    /// Asparagine (N)
    Asn = 2,
    /// Aspartate (D)
    Asp = 3,
    /// Cysteine (C)
    Cys = 4,
    /// Glutamine (Q)
    Gln = 5,
    /// Glutamate (E)
    Glu = 6,
    /// Glycine (G)
    Gly = 7,
    /// Histidine (H)
    His = 8,
    /// Isoleucine (I)
    Ile = 9,
    /// Leucine (L)
    Leu = 10,
    /// Lysine (K)
    Lys = 11,
    /// Methionine (M)
    Met = 12,
    /// Phenylalanine (F)
    Phe = 13,
    /// Proline (P)
    Pro = 14,
    /// Serine (S)
    Ser = 15,
    /// Threonine (T)
    Thr = 16,
    /// Tryptophan (W)
    Trp = 17,
    /// Tyrosine (Y)
    Tyr = 18,
    /// Valine (V)
    Val = 19,
    /// Asx: asparagine or aspartate (B)
    Asx = 20,
    /// Glx: glutamine or glutamate (Z)
    Glx = 21,
    /// Any / unknown residue (X)
    Xaa = 22,
    /// Translation stop (*)
    Stop = 23,
}

impl AminoAcid {
    /// Number of symbols in the alphabet.
    pub const COUNT: usize = 24;

    /// Number of standard (unambiguous) amino acids.
    pub const STANDARD_COUNT: usize = 20;

    /// All 24 symbols in index order.
    pub const ALL: [AminoAcid; Self::COUNT] = [
        AminoAcid::Ala,
        AminoAcid::Arg,
        AminoAcid::Asn,
        AminoAcid::Asp,
        AminoAcid::Cys,
        AminoAcid::Gln,
        AminoAcid::Glu,
        AminoAcid::Gly,
        AminoAcid::His,
        AminoAcid::Ile,
        AminoAcid::Leu,
        AminoAcid::Lys,
        AminoAcid::Met,
        AminoAcid::Phe,
        AminoAcid::Pro,
        AminoAcid::Ser,
        AminoAcid::Thr,
        AminoAcid::Trp,
        AminoAcid::Tyr,
        AminoAcid::Val,
        AminoAcid::Asx,
        AminoAcid::Glx,
        AminoAcid::Xaa,
        AminoAcid::Stop,
    ];

    /// The twenty standard amino acids in index order.
    pub const STANDARD: [AminoAcid; Self::STANDARD_COUNT] = {
        let mut out = [AminoAcid::Ala; Self::STANDARD_COUNT];
        let mut i = 0;
        while i < Self::STANDARD_COUNT {
            out[i] = Self::ALL[i];
            i += 1;
        }
        out
    };

    const CHARS: [u8; Self::COUNT] = *b"ARNDCQEGHILKMFPSTWYVBZX*";

    /// Numeric index of this residue (0..=23), stable across versions.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Reconstructs a residue from its numeric index.
    ///
    /// Returns `None` if `index >= AminoAcid::COUNT`.
    ///
    /// ```
    /// use sapa_bioseq::AminoAcid;
    /// assert_eq!(AminoAcid::from_index(4), Some(AminoAcid::Cys));
    /// assert_eq!(AminoAcid::from_index(99), None);
    /// ```
    #[inline]
    pub const fn from_index(index: usize) -> Option<AminoAcid> {
        if index < Self::COUNT {
            Some(Self::ALL[index])
        } else {
            None
        }
    }

    /// The single-letter IUPAC code.
    #[inline]
    pub const fn to_char(self) -> char {
        Self::CHARS[self as usize] as char
    }

    /// Parses a single-letter IUPAC code (case-insensitive).
    ///
    /// `J`, `U` (selenocysteine) and `O` (pyrrolysine) are mapped to `X`
    /// as NCBI tools commonly do.
    pub fn from_char(c: char) -> Option<AminoAcid> {
        Self::from_byte(c as u8)
    }

    /// Parses a single-letter code from a raw ASCII byte.
    pub fn from_byte(b: u8) -> Option<AminoAcid> {
        let up = b.to_ascii_uppercase();
        let aa = match up {
            b'A' => AminoAcid::Ala,
            b'R' => AminoAcid::Arg,
            b'N' => AminoAcid::Asn,
            b'D' => AminoAcid::Asp,
            b'C' => AminoAcid::Cys,
            b'Q' => AminoAcid::Gln,
            b'E' => AminoAcid::Glu,
            b'G' => AminoAcid::Gly,
            b'H' => AminoAcid::His,
            b'I' => AminoAcid::Ile,
            b'L' => AminoAcid::Leu,
            b'K' => AminoAcid::Lys,
            b'M' => AminoAcid::Met,
            b'F' => AminoAcid::Phe,
            b'P' => AminoAcid::Pro,
            b'S' => AminoAcid::Ser,
            b'T' => AminoAcid::Thr,
            b'W' => AminoAcid::Trp,
            b'Y' => AminoAcid::Tyr,
            b'V' => AminoAcid::Val,
            b'B' => AminoAcid::Asx,
            b'Z' => AminoAcid::Glx,
            b'X' | b'J' | b'U' | b'O' => AminoAcid::Xaa,
            b'*' => AminoAcid::Stop,
            _ => return None,
        };
        Some(aa)
    }

    /// Whether this is one of the twenty standard amino acids.
    #[inline]
    pub const fn is_standard(self) -> bool {
        (self as usize) < Self::STANDARD_COUNT
    }
}

impl std::fmt::Display for AminoAcid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

impl From<AminoAcid> for u8 {
    fn from(aa: AminoAcid) -> u8 {
        aa as u8
    }
}

impl TryFrom<u8> for AminoAcid {
    type Error = crate::Error;

    /// Interprets `value` as an ASCII single-letter code.
    fn try_from(value: u8) -> Result<Self, Self::Error> {
        AminoAcid::from_byte(value).ok_or(crate::Error::InvalidResidue {
            byte: value,
            position: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_symbols() {
        for aa in AminoAcid::ALL {
            assert_eq!(AminoAcid::from_char(aa.to_char()), Some(aa));
            assert_eq!(AminoAcid::from_index(aa.index()), Some(aa));
        }
    }

    #[test]
    fn case_insensitive_parse() {
        assert_eq!(AminoAcid::from_char('a'), Some(AminoAcid::Ala));
        assert_eq!(AminoAcid::from_char('w'), Some(AminoAcid::Trp));
    }

    #[test]
    fn rare_residues_map_to_x() {
        for c in ['J', 'U', 'O', 'j', 'u', 'o'] {
            assert_eq!(AminoAcid::from_char(c), Some(AminoAcid::Xaa));
        }
    }

    #[test]
    fn invalid_bytes_rejected() {
        for c in ['1', ' ', '-', '?', '\n'] {
            assert_eq!(AminoAcid::from_char(c), None);
        }
    }

    #[test]
    fn standard_flag() {
        assert!(AminoAcid::Ala.is_standard());
        assert!(AminoAcid::Val.is_standard());
        assert!(!AminoAcid::Asx.is_standard());
        assert!(!AminoAcid::Stop.is_standard());
    }

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; AminoAcid::COUNT];
        for aa in AminoAcid::ALL {
            assert!(!seen[aa.index()]);
            seen[aa.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
