//! Free-form parameter sweeps: any combination of workload × width ×
//! memory preset × predictor, beyond the fixed figures.

use crate::context::Context;
use crate::format::{f2, pct, Table};
use sapa_cpu::config::{BranchConfig, IssueModel, MemConfig};
use sapa_workloads::Workload;

/// A parsed sweep specification.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Workloads to run.
    pub workloads: Vec<Workload>,
    /// Width presets ("4-way", "8-way", "12-way", "16-way").
    pub widths: Vec<String>,
    /// Memory presets ("me1" … "meinf").
    pub mems: Vec<String>,
    /// Predictors ("real", "perfect").
    pub predictors: Vec<String>,
    /// Issue models ("ooo", "scoreboard").
    pub models: Vec<String>,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec {
            workloads: Workload::ALL.to_vec(),
            widths: vec!["4-way".into()],
            mems: vec!["me1".into()],
            predictors: vec!["real".into()],
            models: vec!["ooo".into()],
        }
    }
}

/// Parses an issue-model name.
pub fn parse_model(name: &str) -> Result<IssueModel, String> {
    match name {
        "ooo" => Ok(IssueModel::OutOfOrder),
        "scoreboard" => Ok(IssueModel::Scoreboard),
        other => Err(format!(
            "unknown issue model {other}; valid: ooo, scoreboard"
        )),
    }
}

impl SweepSpec {
    /// Parses one `key=value[,value…]` argument into the spec.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown key or value.
    pub fn apply(&mut self, arg: &str) -> Result<(), String> {
        let (key, values) = arg
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got {arg}"))?;
        let values: Vec<&str> = values.split(',').collect();
        match key {
            "workload" => {
                self.workloads = values
                    .iter()
                    .map(|v| parse_workload(v))
                    .collect::<Result<_, _>>()?;
            }
            "width" => {
                for v in &values {
                    if !["4-way", "8-way", "12-way", "16-way"].contains(v) {
                        return Err(format!("unknown width {v}"));
                    }
                }
                self.widths = values.iter().map(|v| v.to_string()).collect();
            }
            "mem" => {
                for v in &values {
                    if !["me1", "me2", "me3", "me4", "meinf"].contains(v) {
                        return Err(format!("unknown memory preset {v}"));
                    }
                }
                self.mems = values.iter().map(|v| v.to_string()).collect();
            }
            "bp" => {
                for v in &values {
                    if !["real", "perfect"].contains(v) {
                        return Err(format!("unknown predictor {v}"));
                    }
                }
                self.predictors = values.iter().map(|v| v.to_string()).collect();
            }
            "model" => {
                for v in &values {
                    parse_model(v)?;
                }
                self.models = values.iter().map(|v| v.to_string()).collect();
            }
            other => return Err(format!("unknown sweep key {other}")),
        }
        Ok(())
    }

    /// Every `(workload, config)` point of the grid, in render order.
    fn points(&self) -> Vec<(Workload, sapa_cpu::SimConfig)> {
        let mut points = Vec::new();
        for &w in &self.workloads {
            for width in &self.widths {
                for mem_name in &self.mems {
                    let mem = mem_by_name(mem_name);
                    for bp in &self.predictors {
                        let branch = if bp == "perfect" {
                            BranchConfig::perfect()
                        } else {
                            BranchConfig::table_vi()
                        };
                        for model in &self.models {
                            let mut cfg = Context::config(width, &mem, branch.clone());
                            cfg.cpu.issue_model =
                                parse_model(model).expect("validated at apply time");
                            points.push((w, cfg));
                        }
                    }
                }
            }
        }
        points
    }

    /// Runs the sweep and renders a table.
    ///
    /// Points whose simulation failed (corrupted trace, invalid
    /// configuration) render as `FAILED` rows; the rest of the grid
    /// completes normally. A deterministic "failed points" trailer
    /// lists each failure with its cause so the exit status and the
    /// report agree on what went wrong.
    pub fn run(&self, ctx: &mut Context) -> String {
        // The whole grid goes to the batch engine up front so the
        // points run in parallel under --threads.
        ctx.sim_batch(&self.points());
        let mut t = Table::new(&[
            "workload", "width", "mem", "bp", "model", "cycles", "IPC", "dl1 miss", "bp acc",
            "top EU", "slots", "rn", "rs", "rob", "lsq", "rpl",
        ]);
        // Data columns after the FAILED marker; the padding below must
        // cover exactly this many cells so failed rows stay aligned
        // with the per-structure stall columns.
        const DATA_COLS_AFTER_FAILED: usize = 10;
        for &w in &self.workloads {
            for width in &self.widths {
                for mem_name in &self.mems {
                    let mem = mem_by_name(mem_name);
                    for bp in &self.predictors {
                        let branch = if bp == "perfect" {
                            BranchConfig::perfect()
                        } else {
                            BranchConfig::table_vi()
                        };
                        for model in &self.models {
                            let mut cfg = Context::config(width, &mem, branch.clone());
                            cfg.cpu.issue_model =
                                parse_model(model).expect("validated at apply time");
                            let row_head = vec![
                                w.label().to_string(),
                                width.clone(),
                                mem_name.clone(),
                                bp.clone(),
                                model.clone(),
                            ];
                            match ctx.try_sim(w, &cfg) {
                                Ok(r) => {
                                    // riscv-sim-style EU attribution: the
                                    // busiest functional-unit class makes
                                    // compute-bound points readable at a
                                    // glance (RG_VI-heavy SIMD codes pin
                                    // their vector unit; memory-bound codes
                                    // run every EU near idle).
                                    let top_eu = r
                                        .busiest_eu()
                                        .map(|(c, busy)| format!("{} {}", c.label(), pct(busy)))
                                        .unwrap_or_default();
                                    let slots = pct(r.issue_slot_utilisation());
                                    let s = &r.structures;
                                    t.row_owned(
                                        row_head
                                            .into_iter()
                                            .chain([
                                                r.cycles.to_string(),
                                                f2(r.ipc()),
                                                pct(r.dl1.miss_rate()),
                                                pct(r.bp_accuracy()),
                                                top_eu,
                                                slots,
                                                s.rename_stalls.to_string(),
                                                s.rs_full_stalls.to_string(),
                                                s.rob_full_stalls.to_string(),
                                                (s.lq_full_stalls + s.sq_full_stalls).to_string(),
                                                s.replays.to_string(),
                                            ])
                                            .collect(),
                                    )
                                }
                                Err(_) => t.row_owned(
                                    row_head
                                        .into_iter()
                                        .chain(std::iter::once("FAILED".to_string()))
                                        .chain(std::iter::repeat_n(
                                            String::new(),
                                            DATA_COLS_AFTER_FAILED,
                                        ))
                                        .collect(),
                                ),
                            }
                        }
                    }
                }
            }
        }
        let mut out = t.render();
        let failed = ctx.failed_jobs();
        if !failed.is_empty() {
            out.push_str(&format!(
                "{} failed point{}:\n",
                failed.len(),
                if failed.len() == 1 { "" } else { "s" }
            ));
            for (w, cause) in failed {
                out.push_str(&format!("  {}: {cause}\n", w.label()));
            }
        }
        out
    }
}

/// Parses a workload name (paper label, case-insensitive).
pub fn parse_workload(name: &str) -> Result<Workload, String> {
    let lower = name.to_ascii_lowercase();
    Workload::ALL
        .into_iter()
        .find(|w| w.label().to_ascii_lowercase() == lower)
        .ok_or_else(|| {
            format!(
                "unknown workload {name}; valid: {}",
                Workload::ALL.map(|w| w.label()).join(", ")
            )
        })
}

fn mem_by_name(name: &str) -> MemConfig {
    match name {
        "me1" => MemConfig::me1(),
        "me2" => MemConfig::me2(),
        "me3" => MemConfig::me3(),
        "me4" => MemConfig::me4(),
        _ => MemConfig::meinf(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn parses_keys_and_rejects_garbage() {
        let mut spec = SweepSpec::default();
        spec.apply("workload=BLAST,FASTA34").unwrap();
        assert_eq!(spec.workloads, vec![Workload::Blast, Workload::Fasta34]);
        spec.apply("width=8-way").unwrap();
        spec.apply("mem=me1,meinf").unwrap();
        spec.apply("bp=perfect").unwrap();
        assert!(spec.apply("width=32-way").is_err());
        assert!(spec.apply("nonsense=1").is_err());
        assert!(spec.apply("noequals").is_err());
    }

    #[test]
    fn runs_a_tiny_grid() {
        let mut ctx = Context::new(Scale::Tiny);
        let mut spec = SweepSpec::default();
        spec.apply("workload=BLAST").unwrap();
        spec.apply("mem=me1,meinf").unwrap();
        let out = spec.run(&mut ctx);
        assert_eq!(out.lines().count(), 2 + 2); // header + rule + 2 rows
        assert!(out.contains("meinf"));
    }

    #[test]
    fn sweep_survives_one_poisoned_workload() {
        use sapa_core::fault::FaultPlan;
        use sapa_workloads::Workload;
        let mut ctx = Context::new(Scale::Tiny);
        ctx.corrupt_trace(Workload::Blast, &FaultPlan::new(7, 0.01));
        let mut spec = SweepSpec::default();
        spec.apply("workload=BLAST,FASTA34").unwrap();
        let out = spec.run(&mut ctx);
        assert!(out.contains("FAILED"), "out:\n{out}");
        assert!(out.contains("1 failed point"), "out:\n{out}");
        assert!(out.contains("trace error"), "out:\n{out}");
        // The healthy workload still rendered a real row.
        let fasta_row = out
            .lines()
            .find(|l| l.starts_with("FASTA34"))
            .expect("FASTA34 row");
        assert!(!fasta_row.contains("FAILED"));
    }

    #[test]
    fn sweeps_both_issue_models() {
        let mut ctx = Context::new(Scale::Tiny);
        let mut spec = SweepSpec::default();
        spec.apply("workload=BLAST").unwrap();
        spec.apply("model=ooo,scoreboard").unwrap();
        let out = spec.run(&mut ctx);
        assert_eq!(out.lines().count(), 2 + 2); // header + rule + 2 rows
        assert!(out.contains("scoreboard"), "out:\n{out}");
        assert!(out.contains("ooo"), "out:\n{out}");
        assert!(spec.apply("model=inorder").is_err());
    }

    #[test]
    fn failed_rows_pad_the_structure_columns() {
        // A poisoned point on the widest grid shape: the FAILED row
        // must carry exactly as many cells as the header (row_owned
        // panics otherwise), covering the per-structure stall columns.
        use sapa_core::fault::FaultPlan;
        let mut ctx = Context::new(Scale::Tiny);
        ctx.corrupt_trace(Workload::Blast, &FaultPlan::new(7, 0.01));
        let mut spec = SweepSpec::default();
        spec.apply("workload=BLAST").unwrap();
        spec.apply("model=ooo,scoreboard").unwrap();
        let out = spec.run(&mut ctx);
        let failed_rows = out.lines().filter(|l| l.contains("FAILED")).count();
        assert_eq!(failed_rows, 2, "out:\n{out}");
    }

    #[test]
    fn workload_parse_is_case_insensitive() {
        assert_eq!(parse_workload("blast").unwrap(), Workload::Blast);
        assert_eq!(parse_workload("sw_VMX128").unwrap(), Workload::SwVmx128);
        assert!(parse_workload("mummer").is_err());
    }
}
