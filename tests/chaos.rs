//! Chaos suite: deterministic fault injection across the whole stack.
//!
//! Every test here follows one discipline: inject faults from a seeded
//! [`FaultPlan`], let the pipeline degrade gracefully, and then assert
//! that what survived is *exactly* reproducible — same quarantine
//! report, same scores, same rendered output — at 1, 2, and 4 worker
//! threads. Fault decisions are keyed on subject content, never on
//! scheduling, so these assertions are exact equalities, not
//! tolerances.

use std::collections::BTreeMap;
use std::sync::Once;
use std::time::Duration;

use sapa_core::align::engine::{
    AlignmentEngine, Deadline, Engine, Prefilter, SearchRequest, SwEngine,
};
use sapa_core::align::parallel::{
    engine_scores, engine_search, engine_search_bounded, QUARANTINED_SCORE,
};
use sapa_core::bioseq::compose::{sample_residue, swissprot_cdf};
use sapa_core::bioseq::matrix::GapPenalties;
use sapa_core::bioseq::rng::Xoshiro256;
use sapa_core::bioseq::{AminoAcid, SubstitutionMatrix};
use sapa_core::cpu::{run_jobs_isolated, SimConfig, Simulator, SweepJob};
use sapa_core::fault::{
    corrupt_packed, subject_key, truncate_fasta, FaultPlan, FaultSite, FaultyEngine,
};
use sapa_core::isa::PackedTrace;
use sapa_core::workloads::{StandardInputs, Workload};
use sapa_service::json::{self, Json};
use sapa_service::{serve, Client, SearchParams, ServiceConfig, ServiceHandle};

/// Silences panic backtraces for *injected* faults only, so the chaos
/// runs don't bury real failures in hundreds of expected panic dumps.
/// Genuine panics still print through the previous hook.
fn quiet_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .map(str::to_owned)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if !msg.contains("injected fault") {
                previous(info);
            }
        }));
    });
}

/// A deterministic 2000-subject synthetic database, 24–56 residues per
/// subject (small enough that full Smith-Waterman over the whole set
/// stays fast on one core).
fn database() -> Vec<Vec<AminoAcid>> {
    let cdf = swissprot_cdf();
    let mut rng = Xoshiro256::new(0x5A5A_2006);
    (0..2000)
        .map(|_| {
            let len = 24 + (rng.next_below(33) as usize);
            (0..len)
                .map(|_| sample_residue(&cdf, rng.next_f64()))
                .collect()
        })
        .collect()
}

fn query() -> Vec<AminoAcid> {
    let cdf = swissprot_cdf();
    let mut rng = Xoshiro256::new(0xBEEF);
    (0..32)
        .map(|_| sample_residue(&cdf, rng.next_f64()))
        .collect()
}

/// The acceptance-scenario plan: every site armed, 5% per decision.
fn plan() -> FaultPlan {
    FaultPlan::new(2006, 0.05)
}

#[test]
fn faulted_search_survives_and_is_thread_count_invariant() {
    quiet_injected_panics();
    let db = database();
    let subjects: Vec<&[AminoAcid]> = db.iter().map(Vec::as_slice).collect();
    let q = query();
    let matrix = SubstitutionMatrix::blosum62();

    let run = |threads: usize| {
        let engine = FaultyEngine::new(SwEngine::new(&q, &matrix, GapPenalties::paper()), plan());
        let (results, mut stats) = engine_search(&engine, &subjects, threads, 50, 1);
        stats.threads = 0; // normalize the only legitimately varying field
                           // Render to a string: "byte-identical output" is the contract.
        let mut text = String::new();
        for h in results.hits() {
            text.push_str(&format!("{} {}\n", h.seq_index, h.score));
        }
        for qn in &stats.quarantined {
            text.push_str(&format!("Q {} {}\n", qn.index, qn.cause));
        }
        (results, stats, text)
    };

    let (_, stats1, text1) = run(1);
    assert!(
        !stats1.quarantined.is_empty(),
        "a 5% panic rate over 2000 subjects must quarantine some"
    );
    assert!(stats1.quarantined.len() < 400, "rate wildly off");
    for q in &stats1.quarantined {
        assert!(q.cause.contains("injected fault"), "cause: {}", q.cause);
    }
    for threads in [2usize, 4] {
        let (_, stats_n, text_n) = run(threads);
        assert_eq!(stats1, stats_n, "stats differ at {threads} threads");
        assert_eq!(text1, text_n, "output differs at {threads} threads");
    }
}

#[test]
fn non_faulted_scores_are_bit_identical_to_a_clean_run() {
    quiet_injected_panics();
    let db = database();
    let subjects: Vec<&[AminoAcid]> = db.iter().map(Vec::as_slice).collect();
    let q = query();
    let matrix = SubstitutionMatrix::blosum62();

    let clean_engine = SwEngine::new(&q, &matrix, GapPenalties::paper());
    let (clean, _) = engine_scores(&clean_engine, &subjects, 2);

    let faulty = FaultyEngine::new(SwEngine::new(&q, &matrix, GapPenalties::paper()), plan());
    let (scores, stats) = engine_scores(&faulty, &subjects, 2);

    let quarantined: Vec<usize> = stats.quarantined.iter().map(|q| q.index).collect();
    for (i, (&got, &want)) in scores.iter().zip(&clean).enumerate() {
        if quarantined.contains(&i) {
            assert_eq!(got, QUARANTINED_SCORE, "subject {i}");
        } else {
            assert_eq!(got, want, "subject {i} drifted under fault injection");
        }
    }
    // The plan's panic decisions are content-keyed: every quarantined
    // index must actually be one the plan faults.
    for &i in &quarantined {
        assert!(plan().triggers(FaultSite::WorkerPanic, subject_key(subjects[i])));
    }
}

#[test]
fn rescore_storms_change_accounting_not_scores() {
    let db = database();
    let subjects: Vec<&[AminoAcid]> = db.iter().map(Vec::as_slice).collect();
    let q = query();
    let matrix = SubstitutionMatrix::blosum62();

    let clean_engine = SwEngine::new(&q, &matrix, GapPenalties::paper());
    let (clean, _) = engine_scores(&clean_engine, &subjects, 2);

    let stormy = FaultyEngine::new(
        SwEngine::new(&q, &matrix, GapPenalties::paper()),
        FaultPlan::only(99, 0.2, FaultSite::RescoreStorm),
    );
    let run = |threads: usize| engine_scores(&stormy, &subjects, threads);
    let (scores, stats) = run(1);
    assert_eq!(scores, clean, "storms must never alter scores");
    assert!(stats.rescored > 0, "a 20% storm rate must fire");
    assert!(stats.quarantined.is_empty());
    // Storm counts ride in per-workspace counters; the graveyard merge
    // keeps the total exact at any thread count.
    for threads in [2usize, 4] {
        assert_eq!(run(threads).1.rescored, stats.rescored);
    }
}

#[test]
fn cell_budget_partial_search_is_deterministic_across_threads() {
    let db = database();
    let subjects: Vec<&[AminoAcid]> = db.iter().map(Vec::as_slice).collect();
    let q = query();
    let matrix = SubstitutionMatrix::blosum62();
    let engine = SwEngine::new(&q, &matrix, GapPenalties::paper());
    let total: u64 = subjects.iter().map(|s| engine.cost(s)).sum();

    let run = |threads: usize| {
        engine_search_bounded(
            &engine,
            &subjects,
            threads,
            50,
            1,
            Some(Deadline::Cells(total / 3)),
        )
    };
    let one = run(1);
    assert!(!one.completed);
    assert!(one.stats.subjects > 0 && one.stats.subjects < subjects.len());
    for threads in [2usize, 4] {
        let n = run(threads);
        assert_eq!(n.completed, one.completed);
        assert_eq!(n.stats.subjects, one.stats.subjects);
        assert_eq!(n.results.hits(), one.results.hits());
    }
}

#[test]
fn deadline_and_quarantine_compose_in_the_request_layer() {
    quiet_injected_panics();
    let db = database();
    let subjects: Vec<&[AminoAcid]> = db.iter().map(Vec::as_slice).collect();
    let q = query();
    let matrix = SubstitutionMatrix::blosum62();
    let req = SearchRequest {
        query: &q,
        matrix: &matrix,
        gaps: GapPenalties::paper(),
        top_k: 25,
        min_score: 1,
        deadline: Some(Deadline::Cells(200_000)),
        report_alignments: false,
        prefilter: Prefilter::Off,
    };
    let run = |threads: usize| {
        let mut resp = Engine::Sw.search(&req, &subjects, threads);
        resp.stats.threads = 0;
        resp
    };
    let one = run(1);
    assert!(!one.completed);
    assert_eq!(one.coverage, one.stats.subjects);
    assert_eq!(run(2), one);
    assert_eq!(run(4), one);
}

#[test]
fn corrupted_packed_traces_are_rejected_not_replayed() {
    let inputs = StandardInputs::with_db_size(12, 1);
    let bundle = Workload::Blast.trace(&inputs);
    let packed = PackedTrace::from_trace(&bundle.trace);
    assert!(packed.check().is_ok(), "clean trace must validate");

    let sim = Simulator::new(SimConfig::four_way());
    for seed in 0..8 {
        let bad = corrupt_packed(&packed, &FaultPlan::new(seed, 0.001));
        let err = sim
            .try_run_packed(&bad)
            .expect_err("corruption must be detected before replay");
        assert!(!format!("{err}").is_empty());
    }
    // And the clean trace still replays after all that.
    assert!(sim.try_run_packed(&packed).is_ok());
}

#[test]
fn sweep_batch_finishes_around_a_poisoned_job() {
    let inputs = StandardInputs::with_db_size(12, 1);
    let packed = PackedTrace::from_trace(&Workload::Fasta34.trace(&inputs).trace);
    let bad = corrupt_packed(&packed, &FaultPlan::new(3, 0.01));

    let clean = std::sync::Arc::new(packed);
    let poisoned = std::sync::Arc::new(bad);
    let jobs: Vec<SweepJob> = (0..5)
        .map(|i| {
            let trace = if i == 2 {
                std::sync::Arc::clone(&poisoned)
            } else {
                std::sync::Arc::clone(&clean)
            };
            SweepJob::new(trace, SimConfig::four_way())
        })
        .collect();
    for threads in [1usize, 2, 4] {
        let outcomes = run_jobs_isolated(&jobs, threads);
        assert_eq!(outcomes.len(), 5);
        for (i, o) in outcomes.iter().enumerate() {
            if i == 2 {
                let cause = &o.as_ref().unwrap_err().cause;
                assert!(cause.contains("trace error"), "cause: {cause}");
            } else {
                assert!(o.is_ok(), "clean job {i} failed at {threads} threads");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Service chaos: the same discipline, one layer up. The daemon gets the
// seeded fault plan, concurrent hostile clients, and deadline storms,
// and must come out with exact accounting — never a restart.
// ---------------------------------------------------------------------------

const SERVICE_TIMEOUT: Duration = Duration::from_secs(60);

/// Short queries keep a 1000-request debug-mode run affordable; every
/// residue is a standard amino acid.
const SERVICE_QUERIES: [&str; 3] = [
    "MKWVTFISLLFLFSSAYSRGVFRRDA",
    "HEAGAWGHEEAEHGAWGHEEFGSATW",
    "PAWHEAEWHEAPAWHEAEKLMNPQRS",
];
const SERVICE_ENGINES: [&str; 3] = ["striped", "blast", "fasta"];

fn service_config(fault: FaultPlan) -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        db_seqs: 48,
        db_median_len: 50.0,
        fault_plan: fault,
        ..ServiceConfig::default()
    }
}

fn service_params(id: u64) -> SearchParams<'static> {
    SearchParams {
        id,
        tenant: ["t0", "t1", "t2", "t3"][(id % 4) as usize],
        engine: SERVICE_ENGINES[(id % 3) as usize],
        query: SERVICE_QUERIES[(id % 3) as usize],
        top_k: 10,
        min_score: 1,
        deadline_cells: None,
        deadline_ms: None,
    }
}

/// The plan's worker-panic decisions are keyed on subject content, so
/// the exact quarantine set is computable from the served corpus alone.
fn predicted_quarantine(server: &ServiceHandle, plan: &FaultPlan) -> Vec<u64> {
    server
        .subjects()
        .iter()
        .enumerate()
        .filter(|(_, s)| plan.triggers(FaultSite::WorkerPanic, subject_key(s)))
        .map(|(i, _)| i as u64)
        .collect()
}

fn reply_quarantined(reply: &Json) -> Vec<u64> {
    reply
        .get("quarantined")
        .and_then(Json::as_arr)
        .map(|a| a.iter().filter_map(Json::as_u64).collect())
        .unwrap_or_default()
}

/// Fires `total` requests over `conns` concurrent connections and
/// returns every reply keyed by request id.
fn fire(
    addr: std::net::SocketAddr,
    total: u64,
    conns: u64,
    mutate: fn(&mut SearchParams<'static>),
) -> BTreeMap<u64, String> {
    let threads: Vec<_> = (0..conns)
        .map(|conn| {
            std::thread::spawn(move || {
                let mut client =
                    Client::connect(addr, SERVICE_TIMEOUT).expect("chaos client connect");
                let mut replies = Vec::new();
                let mut id = conn;
                while id < total {
                    let mut params = service_params(id);
                    mutate(&mut params);
                    let reply = client
                        .search(&params)
                        .unwrap_or_else(|e| panic!("request {id} died: {e}"));
                    replies.push((id, reply));
                    id += conns;
                }
                replies
            })
        })
        .collect();
    let mut all = BTreeMap::new();
    for t in threads {
        for (id, reply) in t.join().expect("chaos client thread") {
            assert!(all.insert(id, reply).is_none(), "duplicate reply id");
        }
    }
    all
}

/// The acceptance scenario: a 1000-request mixed-tenant, mixed-engine
/// run at the 5% worker-panic plan. Every reply must carry *exactly*
/// the quarantine set predicted from subject content, the counters must
/// balance to the request, and the daemon must still serve afterwards —
/// all without a restart.
#[test]
fn service_survives_a_thousand_requests_at_five_percent_panic_rate() {
    quiet_injected_panics();
    let server = serve(service_config(plan())).expect("bind chaos service");
    let addr = server.addr();
    let predicted = predicted_quarantine(&server, &plan());
    assert!(
        !predicted.is_empty(),
        "the seeded plan must fault some of the {} subjects",
        server.db_seqs()
    );

    const TOTAL: u64 = 1000;
    let replies = fire(addr, TOTAL, 8, |_| {});
    assert_eq!(replies.len() as u64, TOTAL);
    for (id, reply) in &replies {
        let v = json::parse(reply).expect("reply parses");
        assert_eq!(
            v.get("type").and_then(Json::as_str),
            Some("result"),
            "id {id}: {reply}"
        );
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(*id));
        assert_eq!(v.get("completed").and_then(Json::as_bool), Some(true));
        // Exact quarantine accounting: content-keyed decisions mean the
        // set is identical for every engine and every request.
        assert_eq!(
            reply_quarantined(&v),
            predicted,
            "id {id} quarantine set drifted"
        );
    }

    // Still alive, still serving — the probe rides the same daemon.
    let mut probe = Client::connect(addr, SERVICE_TIMEOUT).unwrap();
    let pong = probe.request(r#"{"op":"ping","id":424242}"#).unwrap();
    assert!(pong.contains("\"pong\""), "probe after storm: {pong}");
    drop(probe);

    let snap = server.shutdown();
    assert_eq!(snap.submitted, TOTAL);
    assert_eq!(
        snap.request_panics, 0,
        "per-subject quarantine must absorb every panic"
    );
    assert_eq!(snap.quarantined_requests, TOTAL);
    assert_eq!(snap.served_clean, 0);
    assert_eq!(snap.quarantined_subjects, TOTAL * predicted.len() as u64);
    assert_eq!(snap.rejected(), 0);
    assert!(snap.balances(), "accounting must balance: {snap:?}");
}

/// Clients that vanish mid-response (immediate drop, or a half-close
/// while a search is in flight) cost the daemon a failed write at most:
/// execution buckets never move on delivery failure, and the process
/// keeps serving.
#[test]
fn client_disconnects_mid_response_leave_the_daemon_serving() {
    let server = serve(service_config(FaultPlan::DISABLED)).expect("bind service");
    let addr = server.addr();

    // Wave 1: submit and vanish without reading the reply.
    for id in 0..10u64 {
        let mut c = Client::connect(addr, SERVICE_TIMEOUT).unwrap();
        c.send_line(&service_params(id).render()).unwrap();
        drop(c);
    }
    // Wave 2: half-close the write side mid-request; the reply must
    // still arrive on the read side.
    for id in 10..15u64 {
        let mut c = Client::connect(addr, SERVICE_TIMEOUT).unwrap();
        c.send_line(&service_params(id).render()).unwrap();
        c.shutdown_write().unwrap();
        let reply = c
            .recv_line()
            .expect("read after half-close")
            .expect("reply after half-close");
        let v = json::parse(&reply).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(id));
        assert_eq!(v.get("type").and_then(Json::as_str), Some("result"));
    }

    // The daemon answered (or tried to answer) every submission and
    // still serves; dropped sockets moved no accounting buckets.
    let mut probe = Client::connect(addr, SERVICE_TIMEOUT).unwrap();
    let reply = probe.search(&service_params(99)).unwrap();
    assert!(reply.contains("\"type\":\"result\""));
    let deadline = std::time::Instant::now() + SERVICE_TIMEOUT;
    loop {
        // Wave-1 workers may still be finishing; wait for the counters
        // to converge rather than racing them.
        let snap = server.counters();
        if snap.served_clean == 16 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "stuck at {snap:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
    let snap = server.shutdown();
    assert_eq!(snap.submitted, 16);
    assert_eq!(snap.served_clean, 16);
    assert!(snap.balances(), "accounting must balance: {snap:?}");
}

/// A deadline storm: every request carries a cell budget far below the
/// scan cost. Degradation must be graceful (partial results, not
/// errors), typed (`truncated_by: "cells"`), and deterministic — the
/// same request truncates at the same subject every time.
#[test]
fn deadline_storm_degrades_gracefully_and_deterministically() {
    let server = serve(service_config(FaultPlan::DISABLED)).expect("bind service");
    let addr = server.addr();
    let db = server.db_seqs() as u64;

    let storm = |params: &mut SearchParams<'static>| {
        // Exact engines only: heuristic scan costs are not DP cells.
        params.engine = ["striped", "sw"][(params.id % 2) as usize];
        params.deadline_cells = Some(2_000);
    };
    const TOTAL: u64 = 100;
    let first = fire(addr, TOTAL, 4, storm);
    for (id, reply) in &first {
        let v = json::parse(reply).expect("reply parses");
        assert_eq!(
            v.get("type").and_then(Json::as_str),
            Some("result"),
            "id {id}: {reply}"
        );
        assert_eq!(v.get("completed").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("truncated_by").and_then(Json::as_str), Some("cells"));
        let coverage = v.get("coverage").and_then(Json::as_u64).expect("coverage");
        assert!(
            coverage < db,
            "id {id} covered the whole corpus under a tiny budget"
        );
    }
    // Determinism: an identical storm produces byte-identical replies.
    assert_eq!(fire(addr, TOTAL, 4, storm), first);

    let snap = server.shutdown();
    assert_eq!(snap.submitted, 2 * TOTAL);
    assert_eq!(snap.partial, 2 * TOTAL);
    assert_eq!(snap.served_clean, 2 * TOTAL);
    assert!(snap.balances(), "accounting must balance: {snap:?}");
}

/// Concurrency must be invisible in the payload: the same request set
/// fired serially over one connection and concurrently over eight
/// produces byte-identical replies, id for id — with the fault plan
/// armed, so quarantine reporting is covered too.
#[test]
fn concurrent_and_serial_service_runs_are_byte_identical() {
    quiet_injected_panics();
    let server = serve(service_config(plan())).expect("bind service");
    let addr = server.addr();

    const TOTAL: u64 = 120;
    let serial = fire(addr, TOTAL, 1, |_| {});
    let concurrent = fire(addr, TOTAL, 8, |_| {});
    assert_eq!(serial.len() as u64, TOTAL);
    for (id, reply) in &serial {
        assert_eq!(
            concurrent.get(id),
            Some(reply),
            "id {id} differs between serial and concurrent runs"
        );
    }

    let snap = server.shutdown();
    assert_eq!(snap.submitted, 2 * TOTAL);
    assert!(snap.balances(), "accounting must balance: {snap:?}");
}

#[test]
fn truncated_fasta_never_panics() {
    use sapa_core::bioseq::fasta::{read_fasta, write_fasta};
    use sapa_core::bioseq::Sequence;

    let seqs = vec![
        Sequence::from_str("a", "MKWVTFISLLFLFSSAYS").unwrap(),
        Sequence::from_str("b", "HEAGAWGHEE").unwrap(),
        Sequence::from_str("c", "PAWHEAE").unwrap(),
    ];
    let mut bytes = Vec::new();
    write_fasta(&mut bytes, &seqs).unwrap();

    // Every seeded cut, and for good measure every prefix length, must
    // yield Ok(shorter set) or Err — never a panic.
    for seed in 0..32 {
        let plan = FaultPlan::only(seed, 1.0, FaultSite::FastaTruncate);
        let cut = truncate_fasta(&bytes, &plan);
        let _ = read_fasta(&cut[..]);
    }
    for n in 0..bytes.len() {
        let _ = read_fasta(&bytes[..n]);
    }
}
