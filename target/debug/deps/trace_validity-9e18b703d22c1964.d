/root/repo/target/debug/deps/trace_validity-9e18b703d22c1964.d: crates/workloads/tests/trace_validity.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_validity-9e18b703d22c1964.rmeta: crates/workloads/tests/trace_validity.rs Cargo.toml

crates/workloads/tests/trace_validity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
