//! The cycle-driven out-of-order pipeline model.
//!
//! Stage order within a cycle is retire → issue → dispatch → fetch, so
//! an instruction needs at least one cycle per stage (no same-cycle
//! pass-through), matching the multi-stage pipes of the machines the
//! paper models.
//!
//! ## Staged backend
//!
//! The backend is split into the classical out-of-order structures,
//! one module each:
//!
//! * `rename` — the register alias table and physical-register
//!   free-list accounting (dispatch resource, true-dependence source);
//! * `rs` — per-unit-class reservation stations feeding the
//!   limited-window oldest-first issue scan;
//! * `rob` — the retirement-ordered reorder buffer owning all
//!   in-flight instruction state;
//! * `lsq` — the load–store queue and its memory-disambiguation
//!   policy (speculative load bypass with store-resolve replay);
//! * `engine` — the cycle loop tying the stages together.
//!
//! [`crate::config::IssueModel`] selects between the speculative
//! disambiguation policy (`OutOfOrder`, the default) and the original
//! conservative dispatch-time policy (`Scoreboard`), which is kept as
//! a comparison oracle: both models retire the same instructions with
//! identical trace-derived statistics and differ only in timing.
//!
//! ## Trauma attribution
//!
//! On every cycle in which no instruction retires, one cycle is charged
//! to the stall reason of the oldest in-flight instruction — or, when
//! the window is empty, to the reason instruction fetch is not
//! delivering (branch-misprediction recovery, I-cache miss, NFA
//! redirect, …). This is the Moreno et al. accounting that produces the
//! paper's Figure 2 histograms. On top of it, the staged backend
//! reports per-structure pressure ([`crate::stats::StructStalls`]):
//! which structure blocked dispatch, how many loads the LSQ squashed,
//! and how long the window head waited on replays.

mod engine;
mod lsq;
mod rename;
mod rob;
mod rs;

use sapa_isa::inst::{Inst, OpClass};
use sapa_isa::packed::{BlockDecoder, PackedTrace, TraceError, BLOCK_LEN};
use sapa_isa::trace::Trace;

use crate::cache::ServedBy;
use crate::config::{SimConfig, UnitClass};
use crate::stats::SimReport;
use crate::trauma::Trauma;

use engine::Engine;

/// Maps an instruction class to the functional-unit class that executes
/// it (Table IV's unit mix).
#[inline]
pub fn unit_for(op: OpClass) -> UnitClass {
    match op {
        OpClass::IAlu | OpClass::Other => UnitClass::Fix,
        OpClass::ILoad | OpClass::IStore | OpClass::VLoad | OpClass::VStore => UnitClass::Mem,
        OpClass::Branch => UnitClass::Br,
        OpClass::Fpu => UnitClass::Fpu,
        OpClass::VSimple => UnitClass::Vi,
        OpClass::VPerm => UnitClass::Vper,
        OpClass::VCmplx => UnitClass::Vcmplx,
        OpClass::VFpu => UnitClass::Vfpu,
    }
}

/// The trace-driven simulator.
///
/// Construct once per configuration; [`Simulator::run`] may be called
/// repeatedly (each run uses fresh microarchitectural state).
#[derive(Debug, Clone)]
pub struct Simulator {
    cfg: SimConfig,
}

impl Simulator {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SimConfig::validate`].
    pub fn new(cfg: SimConfig) -> Self {
        if let Err(msg) = cfg.validate() {
            panic!("invalid simulator configuration: {msg}");
        }
        Simulator { cfg }
    }

    /// The configuration this simulator models.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Simulates `trace` to completion and returns the measurements.
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds an internal watchdog of
    /// `1000 × len + 10^6` cycles, which would indicate a scheduling
    /// deadlock (an internal bug, not a configuration problem).
    pub fn run(&self, trace: &Trace) -> SimReport {
        self.run_with(trace, &mut DecodeBuf::new())
    }

    /// [`Simulator::run`] with a caller-owned [`DecodeBuf`], so repeated
    /// runs (sweeps) reuse one block buffer instead of allocating per
    /// replay.
    pub fn run_with(&self, trace: &Trace, buf: &mut DecodeBuf) -> SimReport {
        let insts = trace.insts();
        Engine::new(&self.cfg, insts.len(), SliceSource { insts, pos: 0 }, buf).run()
    }

    /// Simulates a [`PackedTrace`] without unpacking it: the replay
    /// block-decodes the compact structure-of-arrays streams into a
    /// small reusable buffer ([`BlockDecoder`]), so each instruction is
    /// decoded exactly once and the decoded form stays L1-resident.
    /// Produces exactly the same report as [`Simulator::run`] on the
    /// equivalent [`Trace`].
    ///
    /// # Panics
    ///
    /// Same watchdog as [`Simulator::run`].
    pub fn run_packed(&self, trace: &PackedTrace) -> SimReport {
        self.run_packed_with(trace, &mut DecodeBuf::new())
    }

    /// [`Simulator::run_packed`] with a caller-owned [`DecodeBuf`]; the
    /// sweep engine gives each worker thread one buffer for its whole
    /// job stream.
    pub fn run_packed_with(&self, trace: &PackedTrace, buf: &mut DecodeBuf) -> SimReport {
        Engine::new(
            &self.cfg,
            trace.len(),
            PackedSource(trace.block_decoder()),
            buf,
        )
        .run()
    }

    /// [`Simulator::run_packed`] hardened against corrupted or malformed
    /// traces: the trace is validated before replay — stream structure
    /// and checksum via [`PackedTrace::check`], then architectural
    /// invariants via [`sapa_isa::validate`] — so untrusted bytes yield
    /// a typed [`TraceError`] instead of a panic deep inside the decode
    /// or replay loop.
    ///
    /// # Errors
    ///
    /// [`TraceError`] describing the first structural problem, checksum
    /// mismatch, or invariant violation.
    pub fn try_run_packed(&self, trace: &PackedTrace) -> Result<SimReport, TraceError> {
        self.try_run_packed_with(trace, &mut DecodeBuf::new())
    }

    /// [`Simulator::try_run_packed`] with a caller-owned [`DecodeBuf`].
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::try_run_packed`].
    pub fn try_run_packed_with(
        &self,
        trace: &PackedTrace,
        buf: &mut DecodeBuf,
    ) -> Result<SimReport, TraceError> {
        trace.check()?;
        let violations = sapa_isa::validate::validate_iter(trace.iter(), 8);
        if let Some(first) = violations.first() {
            return Err(TraceError::Invariant {
                first: first.to_string(),
                violations: violations.len(),
            });
        }
        Ok(self.run_packed_with(trace, buf))
    }
}

/// Reusable block-decode scratch: [`BLOCK_LEN`] decoded instructions
/// (4 KB — comfortably L1-resident). The engine fills it from its
/// instruction source one block at a time and the fetch stage reads decoded
/// `Inst`s straight out of it, so per-instruction decode state never
/// crosses the source boundary. Allocate once per thread and pass to
/// [`Simulator::run_packed_with`] to amortize the allocation across a
/// whole sweep.
#[derive(Debug, Clone)]
pub struct DecodeBuf {
    buf: Vec<Inst>,
}

impl DecodeBuf {
    /// A fresh buffer of [`BLOCK_LEN`] slots.
    pub fn new() -> Self {
        DecodeBuf {
            buf: vec![Inst::default(); BLOCK_LEN],
        }
    }
}

impl Default for DecodeBuf {
    fn default() -> Self {
        DecodeBuf::new()
    }
}

/// Where the engine pulls instructions from, a block at a time:
/// `fill_block` decodes up to `buf.len()` instructions into the front
/// of `buf` and returns how many it wrote (0 only when the trace is
/// exhausted). Successive calls continue where the last one stopped.
trait InstSource {
    fn fill_block(&mut self, buf: &mut [Inst]) -> usize;
}

/// Array-of-structs source: blocks are plain `memcpy`s out of the
/// slice, so the batched front end costs the AoS path almost nothing.
struct SliceSource<'a> {
    insts: &'a [Inst],
    pos: usize,
}

impl InstSource for SliceSource<'_> {
    #[inline]
    fn fill_block(&mut self, buf: &mut [Inst]) -> usize {
        let n = (self.insts.len() - self.pos).min(buf.len());
        buf[..n].copy_from_slice(&self.insts[self.pos..self.pos + n]);
        self.pos += n;
        n
    }
}

/// Compact source: blocks come from [`BlockDecoder::fill`], the
/// batch-decode fast path over the structure-of-arrays streams.
struct PackedSource<'a>(BlockDecoder<'a>);

impl InstSource for PackedSource<'_> {
    #[inline]
    fn fill_block(&mut self, buf: &mut [Inst]) -> usize {
        self.0.fill(buf)
    }
}

/// Register-dependency trauma for a producer of class `op`.
fn rg_trauma_for(op: OpClass, served: Option<ServedBy>) -> Trauma {
    match op {
        OpClass::IAlu | OpClass::Other => Trauma::RgFix,
        OpClass::ILoad | OpClass::VLoad => match served {
            Some(ServedBy::L2) => Trauma::MmDl1,
            Some(ServedBy::Memory) => Trauma::MmDl2,
            _ => Trauma::RgMem,
        },
        OpClass::IStore | OpClass::VStore => Trauma::StData,
        OpClass::Branch => Trauma::RgBr,
        OpClass::Fpu => Trauma::RgFpu,
        OpClass::VSimple => Trauma::RgVi,
        OpClass::VPerm => Trauma::RgVper,
        OpClass::VCmplx => Trauma::RgVcmplx,
        OpClass::VFpu => Trauma::RgVfpu,
    }
}

fn ful_trauma(class: UnitClass) -> Trauma {
    match class {
        UnitClass::Mem => Trauma::FulMem,
        UnitClass::Fix => Trauma::FulFix,
        UnitClass::Fpu => Trauma::FulFpu,
        UnitClass::Br => Trauma::FulBr,
        UnitClass::Vi => Trauma::FulVi,
        UnitClass::Vper => Trauma::FulVper,
        UnitClass::Vcmplx => Trauma::FulVcmplx,
        UnitClass::Vfpu => Trauma::FulVfpu,
    }
}

fn diq_trauma(class: UnitClass) -> Trauma {
    match class {
        UnitClass::Mem => Trauma::DiqMem,
        UnitClass::Fix => Trauma::DiqFix,
        UnitClass::Fpu => Trauma::DiqFpu,
        UnitClass::Br => Trauma::DiqBr,
        UnitClass::Vi => Trauma::DiqVi,
        UnitClass::Vper => Trauma::DiqVper,
        UnitClass::Vcmplx => Trauma::DiqVcmplx,
        UnitClass::Vfpu => Trauma::DiqVfpu,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapa_isa::reg;
    use sapa_isa::trace::Tracer;

    fn run(cfg: SimConfig, build: impl FnOnce(&mut Tracer)) -> SimReport {
        let mut t = Tracer::new();
        build(&mut t);
        Simulator::new(cfg).run(&t.finish())
    }

    #[test]
    fn empty_trace_finishes_instantly() {
        let r = run(SimConfig::four_way(), |_| {});
        assert_eq!(r.instructions, 0);
        assert_eq!(r.cycles, 0);
    }

    #[test]
    fn independent_alu_ops_reach_high_ipc() {
        let r = run(SimConfig::four_way(), |t| {
            for i in 0..20_000u32 {
                // Rotate destination registers so ops are independent.
                t.ialu(i % 8, reg::gpr((i % 16) as u8), &[]);
            }
        });
        assert_eq!(r.instructions, 20_000);
        // 3 FX units on the 4-way core bound throughput at 3/cycle.
        assert!(r.ipc() > 2.5, "ipc {}", r.ipc());
        assert!(r.ipc() <= 3.1, "ipc {}", r.ipc());
    }

    #[test]
    fn serial_chain_is_one_per_cycle_at_best() {
        let r = run(SimConfig::four_way(), |t| {
            for i in 0..5_000u32 {
                t.ialu(i % 8, reg::gpr(1), &[reg::gpr(1)]);
            }
        });
        assert!(r.ipc() <= 1.01, "ipc {}", r.ipc());
    }

    #[test]
    fn slow_integer_chain_blames_rg_fix() {
        // With 3-cycle FX latency a serial chain leaves two zero-retire
        // cycles per instruction, all charged to the integer dependency.
        let mut cfg = SimConfig::four_way();
        cfg.cpu.unit_latency[UnitClass::Fix.index()] = 3;
        let r = run(cfg, |t| {
            for i in 0..5_000u32 {
                t.ialu(i % 8, reg::gpr(1), &[reg::gpr(1)]);
            }
        });
        assert!(r.ipc() < 0.45, "ipc {}", r.ipc());
        let top = r.traumas.top(1);
        assert_eq!(top[0].0, Trauma::RgFix);
    }

    #[test]
    fn vector_chain_blames_vi() {
        let r = run(SimConfig::four_way(), |t| {
            for i in 0..5_000u32 {
                t.vsimple(i % 4, reg::vr(1), &[reg::vr(1)]);
            }
        });
        let top = r.traumas.top(1);
        assert_eq!(top[0].0, Trauma::RgVi);
        // 2-cycle VI latency on a serial chain: IPC ≈ 0.5.
        assert!(r.ipc() < 0.6, "ipc {}", r.ipc());
    }

    #[test]
    fn cold_misses_show_up_in_dl1_stats() {
        let r = run(SimConfig::four_way(), |t| {
            for i in 0..1_000u32 {
                // Stride of a line: every access is a cold miss.
                t.iload(0, reg::gpr(1), 0x2000_0000 + i * 128, 4, &[]);
                t.ialu(1, reg::gpr(2), &[reg::gpr(1)]);
            }
        });
        assert!(r.dl1.misses >= 999, "misses {}", r.dl1.misses);
        // Cold misses go all the way to memory; blame lands on the
        // memory-subsystem traumas.
        assert!(r.traumas.get(Trauma::MmDl1) + r.traumas.get(Trauma::MmDl2) > 0);
    }

    #[test]
    fn mispredicted_branches_charge_if_pred() {
        let r = run(SimConfig::four_way(), |t| {
            let mut x = 0x9E3779B9u32;
            for i in 0..4_000u32 {
                t.ialu(0, reg::gpr(1), &[]);
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                t.branch(1 + (i % 3), (x >> 17) & 1 == 1, 0, &[reg::gpr(1)]);
            }
        });
        assert!(r.bp_predictions >= 4_000);
        assert!(r.bp_accuracy() < 0.75, "accuracy {}", r.bp_accuracy());
        assert!(
            r.traumas.get(Trauma::IfPred) > r.cycles / 10,
            "if_pred {} of {}",
            r.traumas.get(Trauma::IfPred),
            r.cycles
        );
    }

    #[test]
    fn perfect_bp_removes_if_pred() {
        let mut cfg = SimConfig::four_way();
        cfg.branch = crate::config::BranchConfig::perfect();
        let r = run(cfg, |t| {
            let mut x = 1u32;
            for i in 0..2_000u32 {
                x = x.wrapping_mul(48271);
                t.ialu(0, reg::gpr(1), &[]);
                t.branch(1 + (i % 3), x & 1 == 1, 0, &[reg::gpr(1)]);
            }
        });
        assert_eq!(r.bp_mispredictions, 0);
        assert_eq!(r.traumas.get(Trauma::IfPred), 0);
    }

    #[test]
    fn wider_core_helps_parallel_code() {
        let build = |t: &mut Tracer| {
            for i in 0..10_000u32 {
                t.ialu(i % 8, reg::gpr((i % 24) as u8), &[]);
            }
        };
        let r4 = run(SimConfig::four_way(), build);
        let r16 = run(SimConfig::sixteen_way(), build);
        assert!(
            r16.cycles < r4.cycles,
            "16-way {} !< 4-way {}",
            r16.cycles,
            r4.cycles
        );
    }

    #[test]
    fn memory_latency_dominates_pointer_chase() {
        // A dependent-load chain touching a new line each time on a
        // 300-cycle-memory hierarchy: IPC must collapse.
        let r = run(SimConfig::four_way(), |t| {
            for i in 0..500u32 {
                t.iload(
                    0,
                    reg::gpr(1),
                    0x3000_0000 + (i * 40_037) % 0x0400_0000,
                    4,
                    &[reg::gpr(1)],
                );
            }
        });
        assert!(r.ipc() < 0.05, "ipc {}", r.ipc());
        assert!(r.traumas.get(Trauma::MmDl2) > 0);
    }

    #[test]
    fn determinism() {
        let build = |t: &mut Tracer| {
            let mut x = 7u32;
            for _ in 0..3_000u32 {
                x = x.wrapping_mul(48271).wrapping_add(11);
                t.iload(0, reg::gpr(1), 0x2000_0000 + (x % 65536), 4, &[]);
                t.ialu(1, reg::gpr(2), &[reg::gpr(1), reg::gpr(2)]);
                t.branch(2, x & 3 == 0, 0, &[reg::gpr(2)]);
            }
        };
        let a = run(SimConfig::four_way(), build);
        let b = run(SimConfig::four_way(), build);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.instructions, b.instructions);
    }

    #[test]
    fn every_retired_instruction_issued_on_exactly_one_unit() {
        let r = run(SimConfig::four_way(), |t| {
            let mut x = 7u32;
            for i in 0..3_000u32 {
                x = x.wrapping_mul(48271).wrapping_add(11);
                t.iload(0, reg::gpr(1), 0x2000_0000 + (x % 65536), 4, &[]);
                t.vsimple(1, reg::vr(1), &[reg::vr(1)]);
                t.fpu(2, reg::fpr(1), &[reg::fpr(1)]);
                t.branch(3 + (i % 3), x & 3 == 0, 0, &[reg::gpr(1)]);
            }
        });
        assert_eq!(r.unit_issued.iter().sum::<u64>(), r.instructions);
        // Slots bound issues: no class can be more than 100% busy.
        for &class in &UnitClass::ALL {
            assert!(
                r.unit_issued[class.index()] <= r.unit_slots[class.index()],
                "{class:?} issued more than its slots"
            );
        }
        // The mix above touches mem, vi, fpu and br every iteration.
        for class in [UnitClass::Mem, UnitClass::Vi, UnitClass::Fpu, UnitClass::Br] {
            assert!(r.eu_utilisation(class) > 0.0, "{class:?} never issued");
        }
        assert!(r.issue_slot_utilisation() > 0.0);
        assert!(r.busiest_eu().is_some());
    }

    #[test]
    fn block_boundaries_are_invisible_to_replay() {
        // A trace much longer than BLOCK_LEN with fetch stalls landing
        // on arbitrary offsets: packed block decode, AoS block copy and
        // a shared reusable buffer must all agree bit-for-bit.
        let mut t = Tracer::new();
        let mut x = 1u32;
        for i in 0..(3 * sapa_isa::BLOCK_LEN as u32 + 17) {
            x = x.wrapping_mul(48271).wrapping_add(7);
            t.iload(i % 200, reg::gpr(1), 0x2000_0000 + (x % 32768), 4, &[]);
            t.branch(200 + (i % 5), x & 1 == 0, 0, &[reg::gpr(1)]);
        }
        let trace = t.finish();
        let packed = sapa_isa::PackedTrace::from_trace(&trace);
        let sim = Simulator::new(SimConfig::four_way());
        let aos = sim.run(&trace);
        let mut buf = DecodeBuf::new();
        assert_eq!(aos, sim.run_packed_with(&packed, &mut buf));
        // Same buffer reused for a second replay: no state leaks.
        assert_eq!(aos, sim.run_packed_with(&packed, &mut buf));
        assert_eq!(aos, sim.run_with(&trace, &mut buf));
    }

    #[test]
    fn occupancy_histograms_cover_all_cycles() {
        let r = run(SimConfig::four_way(), |t| {
            for i in 0..1_000u32 {
                t.ialu(i % 4, reg::gpr(1), &[reg::gpr(1)]);
            }
        });
        let total: u64 = r.inflight_occupancy.as_slice().iter().sum();
        assert_eq!(total, r.cycles);
        let fixq: u64 = r.queue(UnitClass::Fix).as_slice().iter().sum();
        assert_eq!(fixq, r.cycles);
        let lq: u64 = r.lq_occupancy.as_slice().iter().sum();
        assert_eq!(lq, r.cycles);
        let sq: u64 = r.sq_occupancy.as_slice().iter().sum();
        assert_eq!(sq, r.cycles);
    }
}

#[cfg(test)]
mod stall_tests {
    use super::*;
    use crate::config::UnitClass;
    use sapa_isa::reg;
    use sapa_isa::trace::Tracer;

    fn run(cfg: SimConfig, build: impl FnOnce(&mut Tracer)) -> SimReport {
        let mut t = Tracer::new();
        build(&mut t);
        Simulator::new(cfg).run(&t.finish())
    }

    #[test]
    fn mshr_limit_throttles_independent_misses() {
        // Independent cold-missing loads: more MSHRs = more overlap.
        let build = |t: &mut Tracer| {
            for i in 0..2_000u32 {
                t.iload(
                    i % 4,
                    reg::gpr((i % 8) as u8),
                    0x2000_0000 + i * 128,
                    4,
                    &[],
                );
            }
        };
        let mut few = SimConfig::four_way();
        few.cpu.max_outstanding_misses = 1;
        let mut many = SimConfig::four_way();
        many.cpu.max_outstanding_misses = 16;
        let r_few = run(few, build);
        let r_many = run(many, build);
        assert!(
            (r_many.cycles as f64) * 1.5 < r_few.cycles as f64,
            "16 MSHRs {} vs 1 MSHR {}",
            r_many.cycles,
            r_few.cycles
        );
    }

    #[test]
    fn rename_stall_with_tiny_register_file() {
        // Barely more physical than architectural registers: long
        // dependence-free bursts stall on renaming.
        let mut cfg = SimConfig::four_way();
        cfg.cpu.gpr = 34; // 2 spare rename registers
        let build = |t: &mut Tracer| {
            // A load at the head keeps the window from draining while
            // younger ALU ops request new registers.
            for i in 0..500u32 {
                t.iload(0, reg::gpr(1), 0x2000_0000 + i * 128, 4, &[]);
                for k in 0..6u32 {
                    t.ialu(1 + k, reg::gpr((2 + k % 6) as u8), &[]);
                }
            }
        };
        let r_tiny = run(cfg, build);
        let r_full = run(SimConfig::four_way(), build);
        // The rename bottleneck slows the whole run: fewer ALU ops can
        // slip past the in-flight loads.
        assert!(
            r_tiny.cycles > r_full.cycles * 11 / 10,
            "tiny {} vs full {}",
            r_tiny.cycles,
            r_full.cycles
        );
        // The staged accounting names the structure directly.
        assert!(r_tiny.structures.rename_stalls > 0, "no rename stalls");
    }

    #[test]
    fn issue_queue_full_charges_diq() {
        // One VI unit, tiny VI station, long independent VI burst: the
        // station fills and dispatch blocks.
        let mut cfg = SimConfig::four_way();
        cfg.cpu.issue_queue[UnitClass::Vi.index()] = 2;
        cfg.cpu.rs_entries[UnitClass::Vi.index()] = 2;
        let r = run(cfg, |t| {
            t.iload(0, reg::gpr(1), 0x2000_0000, 4, &[]);
            for i in 0..2_000u32 {
                // All depend on the initial slow load, so they pile up
                // in the VI queue.
                t.vsimple(1 + (i % 4), reg::vr((i % 16) as u8), &[reg::gpr(1)]);
            }
        });
        // The 2-entry queue runs pinned at capacity while the load is
        // outstanding and the VI unit drains it afterwards.
        let hist = r.queue(UnitClass::Vi);
        assert!(
            hist.cycles_at(2) > r.cycles / 4,
            "queue never filled: {:?} of {}",
            hist.as_slice(),
            r.cycles
        );
        assert!(r.structures.rs_full_stalls > 0, "no RS-full stalls");
    }

    #[test]
    fn retire_queue_full_charges_roqf() {
        let mut cfg = SimConfig::four_way();
        cfg.cpu.retire_queue = 8;
        cfg.cpu.inflight = 16;
        let build = |t: &mut Tracer| {
            // Slow head (memory) + many fast followers.
            for i in 0..300u32 {
                t.iload(0, reg::gpr(1), 0x2000_0000 + i * 128, 4, &[]);
                for k in 0..12u32 {
                    t.ialu(1 + k, reg::gpr(2), &[]);
                }
            }
        };
        let r_small = run(cfg, build);
        let r_big = run(SimConfig::four_way(), build);
        // A tiny window cannot overlap the independent misses: memory-
        // level parallelism collapses and the run slows dramatically.
        assert!(
            r_small.cycles > r_big.cycles * 2,
            "small window {} vs big {}",
            r_small.cycles,
            r_big.cycles
        );
        // The window sits pinned at its 8-entry capacity.
        assert!(r_small.retireq_occupancy.cycles_at(8) > r_small.cycles / 2);
        assert!(r_small.structures.rob_full_stalls > 0, "no ROB-full stalls");
    }

    #[test]
    fn store_forward_counts_are_reported() {
        let r = run(SimConfig::four_way(), |t| {
            for i in 0..100u32 {
                let a = 0x2000_0000 + (i % 4) * 16;
                t.istore(0, a, 4, &[reg::gpr(1)]);
                t.iload(1, reg::gpr(2), a, 4, &[]);
                t.ialu(2, reg::gpr(1), &[reg::gpr(2)]);
            }
        });
        assert!(r.store_forwards > 50, "forwards {}", r.store_forwards);
    }

    #[test]
    fn nfa_misses_charge_if_nfa_on_first_encounters() {
        // Many distinct taken-branch sites: each first encounter is an
        // NFA miss with a redirect bubble.
        let r = run(SimConfig::four_way(), |t| {
            for i in 0..2_000u32 {
                t.ialu(4 * i, reg::gpr(1), &[]);
                t.jump(4 * i + 1, 4 * i + 2);
            }
        });
        assert!(r.traumas.get(Trauma::IfNfa) > 0, "no if_nfa recorded");
    }

    #[test]
    fn icache_misses_charge_if_l_traumas() {
        // Walk a huge code footprint: every line crossing misses.
        let r = run(SimConfig::four_way(), |t| {
            for i in 0..30_000u32 {
                t.ialu(i, reg::gpr(1), &[]);
            }
        });
        assert!(r.il1.misses > 100, "il1 misses {}", r.il1.misses);
        let if_cycles = r.traumas.get(Trauma::IfL1) + r.traumas.get(Trauma::IfL2);
        assert!(if_cycles > 0, "no fetch-miss stall cycles");
    }
}

#[cfg(test)]
mod ooo_tests {
    use super::*;
    use crate::config::IssueModel;
    use sapa_isa::reg;
    use sapa_isa::trace::{Trace, Tracer};

    fn build_mixed(n: u32) -> Trace {
        let mut t = Tracer::new();
        let mut x = 7u32;
        for i in 0..n {
            x = x.wrapping_mul(48271).wrapping_add(11);
            t.istore(0, 0x2000_0000 + (x % 4096), 4, &[reg::gpr(1)]);
            t.iload(1, reg::gpr(2), 0x2000_0000 + (x % 4096), 4, &[]);
            t.ialu(2, reg::gpr(1), &[reg::gpr(2)]);
            t.branch(3 + (i % 3), x & 3 == 0, 0, &[reg::gpr(1)]);
        }
        t.finish()
    }

    fn with_model(model: IssueModel) -> SimConfig {
        let mut cfg = SimConfig::four_way();
        cfg.cpu.issue_model = model;
        cfg
    }

    #[test]
    fn scoreboard_oracle_agrees_on_trace_derived_stats() {
        // The two issue models are timing policies over the same trace:
        // everything derived from the trace alone — retired count,
        // cache accesses, branch predictions — must be identical.
        let trace = build_mixed(2_000);
        let sb = Simulator::new(with_model(IssueModel::Scoreboard)).run(&trace);
        let ooo = Simulator::new(with_model(IssueModel::OutOfOrder)).run(&trace);
        assert_eq!(sb.instructions, ooo.instructions);
        assert_eq!(sb.dl1.accesses, ooo.dl1.accesses);
        assert_eq!(sb.bp_predictions, ooo.bp_predictions);
        assert_eq!(sb.bp_mispredictions, ooo.bp_mispredictions);
        assert_eq!(
            sb.unit_issued.iter().sum::<u64>(),
            ooo.unit_issued.iter().sum::<u64>()
        );
    }

    #[test]
    fn scoreboard_never_replays() {
        let trace = build_mixed(2_000);
        let sb = Simulator::new(with_model(IssueModel::Scoreboard)).run(&trace);
        assert_eq!(sb.structures.replays, 0);
        assert_eq!(sb.structures.replay_wait_cycles, 0);
        // No load queue in the scoreboard model: occupancy pinned at 0.
        assert_eq!(sb.lq_occupancy.cycles_at(0), sb.cycles);
    }

    #[test]
    fn resolving_store_replays_bypassing_load() {
        // The store's data hangs off a cold-missing load, so it sits
        // unresolved for hundreds of cycles; the younger load to the
        // same address has no register inputs and issues right past it.
        // When the store finally resolves, the load must replay.
        let mut t = Tracer::new();
        for i in 0..200u32 {
            t.iload(0, reg::gpr(1), 0x3000_0000 + i * 128, 4, &[]);
            t.istore(1, 0x2000_0000, 4, &[reg::gpr(1)]);
            t.iload(2, reg::gpr(2), 0x2000_0000, 4, &[]);
            t.ialu(3, reg::gpr(3), &[reg::gpr(2)]);
        }
        let trace = t.finish();
        let r = Simulator::new(with_model(IssueModel::OutOfOrder)).run(&trace);
        assert!(
            r.structures.replays > 50,
            "replays {}",
            r.structures.replays
        );
        // Replayed loads re-deliver through the store queue.
        assert!(r.store_forwards > 50, "forwards {}", r.store_forwards);
        // Every instruction still retires exactly once, counted on one
        // unit, despite the squash-and-reissue churn.
        assert_eq!(r.instructions, trace.insts().len() as u64);
        assert_eq!(r.unit_issued.iter().sum::<u64>(), r.instructions);
        // And the cache saw each memory op exactly once.
        assert_eq!(r.dl1.accesses, 3 * 200);
    }

    #[test]
    fn full_load_queue_stalls_dispatch() {
        let mut cfg = with_model(IssueModel::OutOfOrder);
        cfg.cpu.lsq_loads = 2;
        let mut t = Tracer::new();
        for i in 0..1_000u32 {
            // Independent cold misses: loads pile up in the window.
            t.iload(
                i % 4,
                reg::gpr((i % 8) as u8),
                0x2000_0000 + i * 128,
                4,
                &[],
            );
        }
        let r = Simulator::new(cfg).run(&t.finish());
        assert!(
            r.structures.lq_full_stalls > 0,
            "no LQ-full stalls in {:?}",
            r.structures
        );
        assert!(r.lq_occupancy.cycles_at(2) > 0, "LQ never filled");
    }

    #[test]
    fn full_store_queue_stalls_dispatch() {
        let mut cfg = with_model(IssueModel::OutOfOrder);
        cfg.cpu.lsq_stores = 2;
        let mut t = Tracer::new();
        for i in 0..300u32 {
            // A slow head load keeps retirement (and thus store-queue
            // draining) blocked while stores pour in behind it.
            t.iload(0, reg::gpr(1), 0x3000_0000 + i * 128, 4, &[]);
            for k in 0..6u32 {
                t.istore(1 + k, 0x2000_0000 + k * 64, 4, &[]);
            }
        }
        let r = Simulator::new(cfg).run(&t.finish());
        assert!(
            r.structures.sq_full_stalls > 0,
            "no SQ-full stalls in {:?}",
            r.structures
        );
    }

    #[test]
    fn speculative_bypass_is_at_least_as_fast() {
        // Stores with slow data but distinct addresses: the scoreboard
        // serializes same-granule load/store pairs it cannot tell apart
        // only when granules collide; with disjoint addresses both
        // models should let the loads run free — and the speculative
        // model must never be slower than the conservative one here,
        // because nothing ever replays.
        let mut t = Tracer::new();
        for i in 0..500u32 {
            t.iload(0, reg::gpr(1), 0x3000_0000 + i * 128, 4, &[]);
            t.istore(1, 0x2000_0000 + (i % 64) * 16, 4, &[reg::gpr(1)]);
            t.iload(2, reg::gpr(2), 0x2800_0000 + (i % 64) * 16, 4, &[]);
            t.ialu(3, reg::gpr(3), &[reg::gpr(2)]);
        }
        let trace = t.finish();
        let sb = Simulator::new(with_model(IssueModel::Scoreboard)).run(&trace);
        let ooo = Simulator::new(with_model(IssueModel::OutOfOrder)).run(&trace);
        assert_eq!(ooo.structures.replays, 0, "disjoint addresses replayed");
        assert!(
            ooo.cycles <= sb.cycles,
            "speculative {} slower than conservative {}",
            ooo.cycles,
            sb.cycles
        );
    }

    #[test]
    fn packed_replay_matches_under_both_models() {
        let trace = build_mixed(1_500);
        let packed = sapa_isa::PackedTrace::from_trace(&trace);
        for model in [IssueModel::Scoreboard, IssueModel::OutOfOrder] {
            let sim = Simulator::new(with_model(model));
            assert_eq!(sim.run(&trace), sim.run_packed(&packed), "{model:?}");
        }
    }
}
